"""Taxonomy structure, depth and LCS queries."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.text.taxonomy import ROOT, Taxonomy, TaxonomyError


@pytest.fixture
def animal_taxonomy():
    return Taxonomy.from_edges(
        [
            ("animal", ROOT),
            ("plant", ROOT),
            ("mammal", "animal"),
            ("rodent", "mammal"),
            ("hamster", "rodent"),
            ("squirrel", "rodent"),
            ("dog", "mammal"),
            ("vegetable", "plant"),
            ("broccoli", "vegetable"),
        ]
    )


def test_root_depth_is_one(animal_taxonomy):
    assert animal_taxonomy.depth(ROOT) == 1


def test_depths_increase_down_the_tree(animal_taxonomy):
    assert animal_taxonomy.depth("animal") == 2
    assert animal_taxonomy.depth("mammal") == 3
    assert animal_taxonomy.depth("rodent") == 4
    assert animal_taxonomy.depth("hamster") == 5


def test_path_to_root(animal_taxonomy):
    assert animal_taxonomy.path_to_root("hamster") == [
        "hamster", "rodent", "mammal", "animal", ROOT,
    ]


def test_lcs_siblings(animal_taxonomy):
    assert animal_taxonomy.lcs("hamster", "squirrel") == "rodent"


def test_lcs_cousins(animal_taxonomy):
    assert animal_taxonomy.lcs("hamster", "dog") == "mammal"


def test_lcs_across_branches(animal_taxonomy):
    assert animal_taxonomy.lcs("hamster", "broccoli") == ROOT


def test_lcs_with_ancestor(animal_taxonomy):
    assert animal_taxonomy.lcs("hamster", "mammal") == "mammal"


def test_lcs_identity(animal_taxonomy):
    assert animal_taxonomy.lcs("dog", "dog") == "dog"


def test_unknown_node_raises(animal_taxonomy):
    with pytest.raises(TaxonomyError):
        animal_taxonomy.depth("unicorn")
    with pytest.raises(TaxonomyError):
        animal_taxonomy.parent("unicorn")
    with pytest.raises(TaxonomyError):
        animal_taxonomy.path_to_root("unicorn")


def test_leaves(animal_taxonomy):
    assert set(animal_taxonomy.leaves()) == {"hamster", "squirrel", "dog", "broccoli"}


def test_contains_and_len(animal_taxonomy):
    assert "hamster" in animal_taxonomy
    assert "unicorn" not in animal_taxonomy
    assert len(animal_taxonomy) == 10  # 9 named + root


def test_rejects_multiple_roots():
    with pytest.raises(TaxonomyError):
        Taxonomy({"a": None, "b": None})


def test_rejects_no_root():
    with pytest.raises(TaxonomyError):
        Taxonomy({"a": "b", "b": "a"})


def test_rejects_unknown_parent():
    with pytest.raises(TaxonomyError):
        Taxonomy({"root": None, "a": "ghost"})


def test_rejects_cycle():
    with pytest.raises(TaxonomyError):
        Taxonomy({"root": None, "a": "b", "b": "c", "c": "a"})


def test_rejects_root_as_child():
    with pytest.raises(TaxonomyError):
        Taxonomy.from_edges([(ROOT, "x")])


# ----------------------------------------------------------------------
# balanced construction
# ----------------------------------------------------------------------
def test_build_balanced_groups_under_categories():
    tax = Taxonomy.build_balanced([["a", "b"], ["c", "d"]])
    assert tax.lcs("a", "b") == "category0"
    assert tax.lcs("c", "d") == "category1"
    assert tax.lcs("a", "c") == ROOT


def test_build_balanced_custom_names():
    tax = Taxonomy.build_balanced([["a"], ["b"]], group_names=["x", "y"])
    assert tax.parent("a") == "x"
    assert tax.parent("b") == "y"


def test_build_balanced_splits_large_groups():
    words = [f"w{i}" for i in range(20)]
    tax = Taxonomy.build_balanced([words], branching=8)
    # all leaves reachable, same depth, grouped under branch nodes
    depths = {tax.depth(w) for w in words}
    assert depths == {4}  # root -> category -> branch -> leaf
    assert tax.lcs("w0", "w1") == "category0.b0"
    assert tax.lcs("w0", "w19") == "category0"


def test_build_balanced_duplicate_words_keep_first_placement():
    tax = Taxonomy.build_balanced([["a", "b"], ["b", "c"]])
    assert tax.parent("b") == "category0"


def test_build_balanced_rejects_small_branching():
    with pytest.raises(TaxonomyError):
        Taxonomy.build_balanced([["a"]], branching=1)


@given(st.lists(st.lists(st.integers(0, 50).map(lambda i: f"w{i}"), min_size=1, max_size=12),
                min_size=1, max_size=5))
def test_build_balanced_every_word_reachable(groups):
    tax = Taxonomy.build_balanced(groups)
    for group in groups:
        for word in group:
            # every word has a path ending at the root
            assert tax.path_to_root(word)[-1] == ROOT
