"""Vocabulary construction pipeline (stem -> stop-filter -> threshold)."""

import pytest

from repro.text.stemmer import PorterStemmer
from repro.text.stopwords import StopwordFilter
from repro.text.vocabulary import Vocabulary, VocabularyBuilder


# ----------------------------------------------------------------------
# Vocabulary container
# ----------------------------------------------------------------------
def test_vocabulary_roundtrip_ids():
    v = Vocabulary(["sunset", "beach", "tree"])
    for term in v:
        assert v.term_of(v.id_of(term)) == term


def test_vocabulary_rejects_duplicates():
    with pytest.raises(ValueError):
        Vocabulary(["a", "a"])


def test_vocabulary_frequencies_align():
    v = Vocabulary(["a", "b"], [5, 3])
    assert v.frequency("a") == 5
    assert v.frequency("b") == 3


def test_vocabulary_rejects_misaligned_frequencies():
    with pytest.raises(ValueError):
        Vocabulary(["a", "b"], [1])


def test_vocabulary_get_returns_none_for_oov():
    v = Vocabulary(["a"])
    assert v.get("b") is None
    assert v.get("a") == 0


def test_vocabulary_contains_len_iter():
    v = Vocabulary(["a", "b"])
    assert "a" in v and "c" not in v
    assert len(v) == 2
    assert list(v) == ["a", "b"]


# ----------------------------------------------------------------------
# VocabularyBuilder
# ----------------------------------------------------------------------
def test_frequency_threshold_drops_rare_terms():
    builder = VocabularyBuilder(min_frequency=2)
    vocab = builder.build([["cat", "dog"], ["cat"], ["typo"]])
    assert "cat" in vocab
    assert "typo" not in vocab
    assert "dog" not in vocab


def test_threshold_counts_occurrences_not_documents():
    builder = VocabularyBuilder(min_frequency=2)
    vocab = builder.build([["cat", "cat"]])  # twice in one document
    assert "cat" in vocab


def test_stemming_merges_variants():
    builder = VocabularyBuilder(min_frequency=2, stemmer=PorterStemmer())
    vocab = builder.build([["eating"], ["eats"]])
    assert len(vocab) == 1
    assert vocab.frequency("eat") == 2


def test_stopwords_removed():
    builder = VocabularyBuilder(min_frequency=1, stopwords=StopwordFilter())
    vocab = builder.build([["the", "hamster"]])
    assert "the" not in vocab
    assert "hamster" in vocab


def test_terms_ordered_by_frequency_then_alpha():
    builder = VocabularyBuilder(min_frequency=1)
    vocab = builder.build([["b", "a", "c"], ["c"]])
    assert vocab.terms == ("c", "a", "b")


def test_normalize_strips_and_lowercases():
    builder = VocabularyBuilder(min_frequency=1)
    assert builder.normalize(["  Sunset ", ""]) == ["sunset"]


def test_rejects_nonpositive_threshold():
    with pytest.raises(ValueError):
        VocabularyBuilder(min_frequency=0)


def test_empty_corpus_yields_empty_vocab():
    vocab = VocabularyBuilder(min_frequency=1).build([])
    assert len(vocab) == 0
