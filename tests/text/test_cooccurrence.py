"""Term co-occurrence similarity (the paper-sanctioned WUP alternative)."""

import pytest

from repro.text.cooccurrence import CooccurrenceSimilarity

DOCS = [
    ["sunset", "beach", "sea"],
    ["sunset", "beach"],
    ["sunset", "mountain"],
    ["city", "night"],
]


def test_jaccard_exact():
    sim = CooccurrenceSimilarity(DOCS, mode="jaccard")
    # beach in {0,1}, sunset in {0,1,2}: inter 2, union 3
    assert sim("beach", "sunset") == pytest.approx(2 / 3)


def test_cosine_exact():
    sim = CooccurrenceSimilarity(DOCS, mode="cosine")
    assert sim("beach", "sunset") == pytest.approx(2 / (2**0.5 * 3**0.5))


def test_disjoint_terms_zero():
    sim = CooccurrenceSimilarity(DOCS)
    assert sim("sea", "night") == 0.0


def test_identity_of_known_term():
    sim = CooccurrenceSimilarity(DOCS)
    assert sim("sunset", "sunset") == 1.0


def test_unknown_terms_zero_even_if_equal():
    sim = CooccurrenceSimilarity(DOCS)
    assert sim("unicorn", "unicorn") == 0.0
    assert sim("unicorn", "sunset") == 0.0


def test_symmetry():
    sim = CooccurrenceSimilarity(DOCS)
    assert sim("beach", "mountain") == sim("mountain", "beach")


def test_duplicates_in_document_counted_once():
    sim = CooccurrenceSimilarity([["a", "a", "b"]])
    assert sim.document_frequency("a") == 1


def test_document_frequency():
    sim = CooccurrenceSimilarity(DOCS)
    assert sim.document_frequency("sunset") == 3
    assert sim.document_frequency("unicorn") == 0


def test_vocabulary_lists_seen_terms():
    sim = CooccurrenceSimilarity([["a", "b"]])
    assert set(sim.vocabulary()) == {"a", "b"}


def test_invalid_mode_rejected():
    with pytest.raises(ValueError):
        CooccurrenceSimilarity(DOCS, mode="dice")
