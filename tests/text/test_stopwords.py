"""Stop-word filter behaviour."""

from repro.text.stopwords import SNOWBALL_ENGLISH, StopwordFilter


def test_default_list_contains_core_words():
    f = StopwordFilter()
    for word in ("the", "and", "is", "of", "a"):
        assert f.is_stopword(word)


def test_case_insensitive():
    f = StopwordFilter()
    assert f.is_stopword("The")
    assert f.is_stopword("AND")


def test_content_words_pass():
    f = StopwordFilter()
    for word in ("hamster", "sunset", "broccoli"):
        assert not f.is_stopword(word)


def test_filter_preserves_order():
    f = StopwordFilter()
    assert list(f.filter(["the", "hamster", "is", "eating"])) == ["hamster", "eating"]


def test_extra_words_extend_default():
    f = StopwordFilter(extra=["nikon", "Canon"])
    assert f.is_stopword("nikon")
    assert f.is_stopword("canon")  # lowercased
    assert f.is_stopword("the")  # default retained


def test_custom_list_replaces_default():
    f = StopwordFilter(words=["foo"])
    assert f.is_stopword("foo")
    assert not f.is_stopword("the")


def test_contains_and_len():
    f = StopwordFilter(words=["a", "b"])
    assert "a" in f
    assert "c" not in f
    assert len(f) == 2


def test_default_list_is_frozen():
    assert isinstance(SNOWBALL_ENGLISH, frozenset)
    assert len(SNOWBALL_ENGLISH) > 100
