"""Porter stemmer: published example cases and structural properties."""

import string

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.text.stemmer import PorterStemmer


@pytest.fixture(scope="module")
def stemmer():
    return PorterStemmer()


# Classic cases from Porter's 1980 paper and the reference vocabulary.
PORTER_CASES = [
    ("caresses", "caress"),
    ("ponies", "poni"),
    ("ties", "ti"),
    ("caress", "caress"),
    ("cats", "cat"),
    ("feed", "feed"),
    ("agreed", "agre"),
    ("plastered", "plaster"),
    ("bled", "bled"),
    ("motoring", "motor"),
    ("sing", "sing"),
    ("conflated", "conflat"),
    ("troubled", "troubl"),
    ("sized", "size"),
    ("hopping", "hop"),
    ("tanned", "tan"),
    ("falling", "fall"),
    ("hissing", "hiss"),
    ("fizzed", "fizz"),
    ("failing", "fail"),
    ("filing", "file"),
    ("happy", "happi"),
    ("sky", "sky"),
    ("relational", "relat"),
    ("conditional", "condit"),
    ("rational", "ration"),
    ("valenci", "valenc"),
    ("hesitanci", "hesit"),
    ("digitizer", "digit"),
    ("conformabli", "conform"),
    ("radicalli", "radic"),
    ("differentli", "differ"),
    ("vileli", "vile"),
    ("analogousli", "analog"),
    ("vietnamization", "vietnam"),
    ("predication", "predic"),
    ("operator", "oper"),
    ("feudalism", "feudal"),
    ("decisiveness", "decis"),
    ("hopefulness", "hope"),
    ("callousness", "callous"),
    ("formaliti", "formal"),
    ("sensitiviti", "sensit"),
    ("sensibiliti", "sensibl"),
    ("triplicate", "triplic"),
    ("formative", "form"),
    ("formalize", "formal"),
    ("electriciti", "electr"),
    ("electrical", "electr"),
    ("hopeful", "hope"),
    ("goodness", "good"),
    ("revival", "reviv"),
    ("allowance", "allow"),
    ("inference", "infer"),
    ("airliner", "airlin"),
    ("gyroscopic", "gyroscop"),
    ("adjustable", "adjust"),
    ("defensible", "defens"),
    ("irritant", "irrit"),
    ("replacement", "replac"),
    ("adjustment", "adjust"),
    ("dependent", "depend"),
    ("adoption", "adopt"),
    ("homologou", "homolog"),
    ("communism", "commun"),
    ("activate", "activ"),
    ("angulariti", "angular"),
    ("homologous", "homolog"),
    ("effective", "effect"),
    ("bowdlerize", "bowdler"),
    ("probate", "probat"),
    ("rate", "rate"),
    ("cease", "ceas"),
    ("controll", "control"),
    ("roll", "roll"),
]


@pytest.mark.parametrize("word,expected", PORTER_CASES)
def test_porter_reference_cases(stemmer, word, expected):
    assert stemmer.stem(word) == expected


def test_short_words_unchanged(stemmer):
    for word in ("a", "is", "by", "ox"):
        assert stemmer.stem(word) == word


def test_lowercases_input(stemmer):
    assert stemmer.stem("Hamsters") == stemmer.stem("hamsters")


def test_non_alpha_tokens_pass_through(stemmer):
    assert stemmer.stem("d300") == "d300"
    assert stemmer.stem("new-york") == "new-york"


def test_stem_all_preserves_order(stemmer):
    assert stemmer.stem_all(["cats", "dogs"]) == ["cat", "dog"]


def test_plural_and_gerund_conflate(stemmer):
    """The reason the pipeline stems: inflections share one stem."""
    assert stemmer.stem("eating") == stemmer.stem("eats")
    assert stemmer.stem("connected") == stemmer.stem("connecting") == stemmer.stem("connection")


@given(st.text(alphabet=string.ascii_lowercase, min_size=1, max_size=20))
def test_stem_never_longer_than_word(word):
    assert len(PorterStemmer().stem(word)) <= len(word)


@given(st.text(alphabet=string.ascii_lowercase, min_size=3, max_size=20))
def test_stem_is_nonempty_and_lowercase(word):
    stem = PorterStemmer().stem(word)
    assert stem
    assert stem == stem.lower()


@given(st.text(alphabet=string.ascii_letters, min_size=1, max_size=20))
def test_stem_case_insensitive(word):
    s = PorterStemmer()
    assert s.stem(word) == s.stem(word.lower())
