"""Raw-text tokenizer."""

from repro.text.tokenizer import iter_sentences, tokenize


def test_basic_words():
    assert tokenize("Little muncher") == ["little", "muncher"]


def test_punctuation_stripped():
    assert tokenize("aww, what a cutie! ^__^") == ["aww", "what", "a", "cutie"]


def test_apostrophes_kept_inside_words():
    assert tokenize("he's got broccoli") == ["he's", "got", "broccoli"]


def test_hyphenated_words():
    assert tokenize("new-york skyline") == ["new-york", "skyline"]


def test_alphanumeric_identifiers():
    assert tokenize("shot on a Nikon D300") == ["shot", "on", "a", "nikon", "d300"]


def test_hashtags_unify_by_default():
    assert tokenize("#sunset at the beach") == ["sunset", "at", "the", "beach"]


def test_hashtags_kept_when_requested():
    assert tokenize("#sunset @bob", keep_markers=True) == ["#sunset", "@bob"]


def test_empty_and_symbol_only():
    assert tokenize("") == []
    assert tokenize("!!! ---") == []


def test_unicode_ignored_gracefully():
    # non-ASCII letters are skipped rather than crashing
    assert "cafe" not in tokenize("☕☕☕")


def test_iter_sentences():
    text = "First one. Second one! Third?"
    assert list(iter_sentences(text)) == ["First one.", "Second one!", "Third?"]


def test_iter_sentences_single():
    assert list(iter_sentences("no terminator here")) == ["no terminator here"]
