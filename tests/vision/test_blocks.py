"""Block decomposition and the 16-D descriptor."""

import numpy as np
import pytest

from repro.vision.blocks import DESCRIPTOR_DIM, block_descriptor, block_grid, image_descriptors
from repro.vision.image import SyntheticImage


def test_grid_shape():
    pixels = np.zeros((64, 64, 3))
    blocks = block_grid(pixels, block=16)
    assert blocks.shape == (16, 16, 16, 3)


def test_grid_drops_partial_blocks():
    pixels = np.zeros((40, 70, 3))
    blocks = block_grid(pixels, block=16)
    assert blocks.shape == ((40 // 16) * (70 // 16), 16, 16, 3)


def test_grid_preserves_content():
    pixels = np.arange(32 * 32 * 3, dtype=float).reshape(32, 32, 3)
    blocks = block_grid(pixels, block=16)
    np.testing.assert_array_equal(blocks[0], pixels[:16, :16])
    np.testing.assert_array_equal(blocks[1], pixels[:16, 16:32])
    np.testing.assert_array_equal(blocks[2], pixels[16:, :16])


def test_grid_rejects_small_images():
    with pytest.raises(ValueError):
        block_grid(np.zeros((8, 8, 3)), block=16)


def test_grid_rejects_bad_shape():
    with pytest.raises(ValueError):
        block_grid(np.zeros((32, 32)), block=16)


def test_descriptor_dimension():
    block = np.random.default_rng(0).uniform(size=(16, 16, 3))
    assert block_descriptor(block).shape == (DESCRIPTOR_DIM,)
    assert DESCRIPTOR_DIM == 16  # fixed by the paper (16-D visual words)


def test_descriptor_constant_block():
    block = np.full((16, 16, 3), 0.25)
    d = block_descriptor(block)
    np.testing.assert_allclose(d[0:3], 0.25)   # channel means
    np.testing.assert_allclose(d[3:6], 0.0)    # channel stds
    np.testing.assert_allclose(d[6:9], 0.0)    # hi-bin fraction (0.25 < 0.5)
    np.testing.assert_allclose(d[9:12], 1.0)   # lo-bin fraction
    np.testing.assert_allclose(d[12:], 0.0)    # no gradients, no range


def test_descriptor_separates_textures():
    flat = np.full((16, 16, 3), 0.5)
    stripes = np.zeros((16, 16, 3))
    stripes[::2] = 1.0
    d_flat = block_descriptor(flat)
    d_stripes = block_descriptor(stripes)
    assert d_stripes[13] > d_flat[13]  # vertical gradient energy
    assert d_stripes[15] > d_flat[15]  # luminance range


def test_image_descriptors_stacks_blocks():
    img = SyntheticImage(pixels=np.random.default_rng(1).uniform(size=(48, 48, 3)))
    descriptors = image_descriptors(img, block=16)
    assert descriptors.shape == (9, DESCRIPTOR_DIM)
