"""Synthetic image rendering."""

import numpy as np
import pytest

from repro.vision.image import TopicPalette, default_palettes, render_image


@pytest.fixture
def rng():
    return np.random.default_rng(5)


@pytest.fixture
def palettes(rng):
    return default_palettes(4, rng)


def test_default_palettes_shape(palettes):
    assert len(palettes) == 4
    for p in palettes:
        assert p.base_colors.shape == (3, 3)
        assert (p.base_colors >= 0).all() and (p.base_colors <= 1).all()
        assert p.texture_freq > 0


def test_palette_rejects_bad_colors():
    with pytest.raises(ValueError):
        TopicPalette(base_colors=np.zeros((3, 4)), texture_freq=1.0)


def test_render_shape_and_range(palettes, rng):
    img = render_image(np.array([1.0, 0, 0, 0]), palettes, rng, size=64, block=16)
    assert img.pixels.shape == (64, 64, 3)
    assert img.height == img.width == 64
    assert (img.pixels >= 0).all() and (img.pixels <= 1).all()


def test_render_normalizes_mixture(palettes, rng):
    img = render_image(np.array([2.0, 2.0, 0, 0]), palettes, rng)
    np.testing.assert_allclose(img.topic_mixture, [0.5, 0.5, 0, 0])


def test_render_rejects_mismatched_weights(palettes, rng):
    with pytest.raises(ValueError):
        render_image(np.array([1.0, 0.0]), palettes, rng)


def test_render_rejects_zero_mass(palettes, rng):
    with pytest.raises(ValueError):
        render_image(np.zeros(4), palettes, rng)


def test_render_rejects_nondivisible_block(palettes, rng):
    with pytest.raises(ValueError):
        render_image(np.array([1.0, 0, 0, 0]), palettes, rng, size=60, block=16)


def test_different_topics_render_differently(palettes):
    rng_a = np.random.default_rng(1)
    rng_b = np.random.default_rng(1)
    a = render_image(np.array([1.0, 0, 0, 0]), palettes, rng_a, noise=0.0)
    b = render_image(np.array([0, 0, 0, 1.0]), palettes, rng_b, noise=0.0)
    # Mean colours differ noticeably across topics.
    assert np.abs(a.pixels.mean(axis=(0, 1)) - b.pixels.mean(axis=(0, 1))).max() > 0.05


def test_render_deterministic_given_rng(palettes):
    a = render_image(np.array([1.0, 0, 0, 0]), palettes, np.random.default_rng(3))
    b = render_image(np.array([1.0, 0, 0, 0]), palettes, np.random.default_rng(3))
    np.testing.assert_array_equal(a.pixels, b.pixels)
