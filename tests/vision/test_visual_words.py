"""Visual-word codebook: training, quantization, word similarity."""

import numpy as np
import pytest

from repro.vision.blocks import DESCRIPTOR_DIM
from repro.vision.image import default_palettes, render_image
from repro.vision.visual_words import VisualCodebook, word_names


@pytest.fixture(scope="module")
def trained():
    rng = np.random.default_rng(11)
    palettes = default_palettes(3, rng)
    images = [
        render_image(np.eye(3)[i % 3], palettes, rng, size=64, block=16)
        for i in range(12)
    ]
    codebook = VisualCodebook.train(images, n_words=8, rng=rng)
    return codebook, images


def test_train_produces_requested_words(trained):
    codebook, _ = trained
    assert len(codebook) == 8
    assert codebook.centroids.shape == (8, DESCRIPTOR_DIM)


def test_encode_counts_blocks(trained):
    codebook, images = trained
    bag = codebook.encode(images[0], block=16)
    assert sum(bag.values()) == 16  # 64/16 squared
    assert all(0 <= w < 8 for w in bag)


def test_same_topic_images_share_words(trained):
    codebook, images = trained
    # images 0 and 3 are same topic; 0 and 1 are different topics
    same = codebook.encode(images[0]).keys() & codebook.encode(images[3]).keys()
    diff = codebook.encode(images[0]).keys() & codebook.encode(images[1]).keys()
    assert len(same) >= len(diff)


def test_quantize_nearest(trained):
    codebook, _ = trained
    # A centroid quantizes to itself.
    ids = codebook.quantize_descriptors(codebook.centroids)
    np.testing.assert_array_equal(ids, np.arange(len(codebook)))


def test_word_similarity_properties(trained):
    codebook, _ = trained
    assert codebook.word_similarity(0, 0) == 1.0
    s = codebook.word_similarity(0, 1)
    assert 0.0 < s < 1.0
    assert s == codebook.word_similarity(1, 0)


def test_word_similarity_monotone_in_distance(trained):
    codebook, _ = trained
    distances = [(codebook.word_distance(0, j), codebook.word_similarity(0, j))
                 for j in range(1, len(codebook))]
    distances.sort()
    sims = [s for _, s in distances]
    assert sims == sorted(sims, reverse=True)


def test_constructor_validates_shape():
    with pytest.raises(ValueError):
        VisualCodebook(np.zeros((4, 8)))  # wrong descriptor dim


def test_constructor_validates_scale():
    with pytest.raises(ValueError):
        VisualCodebook(np.zeros((2, DESCRIPTOR_DIM)), similarity_scale=0.0)


def test_train_rejects_empty():
    with pytest.raises(ValueError):
        VisualCodebook.train([], n_words=4, rng=np.random.default_rng(0))


def test_train_rejects_too_many_words():
    rng = np.random.default_rng(0)
    palettes = default_palettes(2, rng)
    images = [render_image(np.array([1.0, 0.0]), palettes, rng, size=32, block=16)]
    with pytest.raises(ValueError):
        VisualCodebook.train(images, n_words=100, rng=rng)  # only 4 blocks


def test_word_names_expands_counts():
    from collections import Counter

    names = word_names(Counter({3: 2, 1: 1}))
    assert list(names) == ["vw1", "vw3", "vw3"]
