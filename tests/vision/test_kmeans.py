"""k-means: clustering correctness and invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.vision.kmeans import kmeans, kmeans_plus_plus


@pytest.fixture
def rng():
    return np.random.default_rng(7)


def _blobs(rng, centers, n_per, spread=0.1):
    points = []
    for c in centers:
        points.append(rng.normal(0.0, spread, size=(n_per, len(c))) + np.asarray(c))
    return np.concatenate(points)


def test_recovers_separated_blobs(rng):
    centers = [(0.0, 0.0), (10.0, 0.0), (0.0, 10.0)]
    points = _blobs(rng, centers, 40)
    result = kmeans(points, 3, rng)
    found = sorted(tuple(np.round(c).astype(int)) for c in result.centroids)
    assert found == sorted((int(a), int(b)) for a, b in centers)


def test_labels_partition_points(rng):
    points = rng.normal(size=(50, 4))
    result = kmeans(points, 5, rng)
    assert result.labels.shape == (50,)
    assert set(np.unique(result.labels)) <= set(range(5))


def test_labels_are_nearest_centroid(rng):
    points = rng.normal(size=(60, 3))
    result = kmeans(points, 4, rng)
    d = ((points[:, None, :] - result.centroids[None, :, :]) ** 2).sum(axis=2)
    np.testing.assert_array_equal(result.labels, d.argmin(axis=1))


def test_inertia_matches_labels(rng):
    points = rng.normal(size=(40, 2))
    result = kmeans(points, 3, rng)
    expected = sum(
        float(((points[i] - result.centroids[result.labels[i]]) ** 2).sum())
        for i in range(len(points))
    )
    assert result.inertia == pytest.approx(expected)


def test_k_equals_n_gives_zero_inertia(rng):
    points = rng.normal(size=(8, 2))
    result = kmeans(points, 8, rng)
    assert result.inertia == pytest.approx(0.0, abs=1e-9)


def test_k_one_gives_mean(rng):
    points = rng.normal(size=(30, 3))
    result = kmeans(points, 1, rng)
    np.testing.assert_allclose(result.centroids[0], points.mean(axis=0))


def test_invalid_k_rejected(rng):
    points = rng.normal(size=(5, 2))
    with pytest.raises(ValueError):
        kmeans(points, 0, rng)
    with pytest.raises(ValueError):
        kmeans(points, 6, rng)


def test_non_2d_rejected(rng):
    with pytest.raises(ValueError):
        kmeans(np.zeros(5), 2, rng)


def test_deterministic_given_seed():
    points = np.random.default_rng(0).normal(size=(50, 4))
    r1 = kmeans(points, 4, np.random.default_rng(99))
    r2 = kmeans(points, 4, np.random.default_rng(99))
    np.testing.assert_array_equal(r1.centroids, r2.centroids)
    assert r1.inertia == r2.inertia


def test_duplicate_points_handled(rng):
    points = np.zeros((20, 3))
    result = kmeans(points, 3, rng)
    assert np.isfinite(result.centroids).all()
    assert result.inertia == pytest.approx(0.0)


def test_plus_plus_picks_input_points(rng):
    points = rng.normal(size=(30, 2))
    centers = kmeans_plus_plus(points, 5, rng)
    point_set = {tuple(p) for p in points}
    for c in centers:
        assert tuple(c) in point_set


def test_plus_plus_spreads_centers(rng):
    # Two tight, far-apart blobs: k-means++ should pick one from each.
    points = _blobs(rng, [(0.0, 0.0), (100.0, 100.0)], 20, spread=0.01)
    centers = kmeans_plus_plus(points, 2, rng)
    assert abs(centers[0][0] - centers[1][0]) > 50


@settings(deadline=None, max_examples=25)
@given(st.integers(1, 6), st.integers(8, 30), st.integers(0, 2**16))
def test_inertia_never_exceeds_single_cluster(k, n, seed):
    """More clusters never fit worse than one cluster (k-means++ start)."""
    rng = np.random.default_rng(seed)
    points = rng.normal(size=(n, 3))
    single = kmeans(points, 1, np.random.default_rng(seed))
    multi = kmeans(points, min(k, n), np.random.default_rng(seed))
    assert multi.inertia <= single.inertia + 1e-9
