"""HTTP front end: routing, JSON codec, admission control, shutdown."""

from __future__ import annotations

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.serving.cache import ResultCache
from repro.serving.http import create_server
from repro.serving.service import QueryService
from repro.serving.snapshot import SnapshotManager


@pytest.fixture()
def running_server(rec_corpus_dir):
    """A live server on an ephemeral port with its own manager/cache."""
    manager = SnapshotManager(rec_corpus_dir)
    manager.load()
    service = QueryService(manager, cache=ResultCache(64))
    server = create_server(service, port=0, max_in_flight=4)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        yield server
    finally:
        server.shutdown()
        server.server_close()
        thread.join(timeout=10)
        assert not thread.is_alive()


def _get(server, path):
    with urllib.request.urlopen(f"http://127.0.0.1:{server.port}{path}") as response:
        return response.status, response.read().decode()


def _post(server, path, body=None):
    request = urllib.request.Request(
        f"http://127.0.0.1:{server.port}{path}",
        data=json.dumps(body if body is not None else {}).encode(),
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request) as response:
        return response.status, response.read().decode()


def test_healthz_over_http(running_server):
    status, body = _get(running_server, "/healthz")
    assert status == 200
    payload = json.loads(body)
    assert payload["status"] == "ok"
    assert payload["generation"] == 1


def test_search_get_matches_service(running_server):
    service = running_server.service
    query_id = service.manager.current.corpus[0].object_id
    status, body = _get(running_server, f"/search?query={query_id}&k=3")
    assert status == 200
    payload = json.loads(body)
    expected = service.search(query=query_id, k=3)
    assert payload["results"] == expected["results"]


def test_search_post_json_body(running_server):
    query_id = running_server.service.manager.current.corpus[1].object_id
    status, body = _post(running_server, "/search", {"query": query_id, "k": 2})
    assert status == 200
    assert len(json.loads(body)["results"]) == 2


def test_repeated_query_hits_cache_and_metrics(running_server):
    query_id = running_server.service.manager.current.corpus[2].object_id
    first = json.loads(_get(running_server, f"/search?query={query_id}&k=3")[1])
    second = json.loads(_get(running_server, f"/search?query={query_id}&k=3")[1])
    assert first["cached"] is False
    assert second["cached"] is True
    _, metrics = _get(running_server, "/metrics")
    assert "repro_result_cache_hits_total 1" in metrics
    assert 'repro_requests_total{endpoint="search",status="200"} 2' in metrics
    assert 'repro_request_latency_seconds_count{endpoint="search"} 2' in metrics


def test_similar_post(running_server):
    status, body = _post(running_server, "/similar", {"tags": ["tag1", "tag2"], "k": 3})
    assert status == 200
    assert json.loads(body)["endpoint"] == "similar"


def test_default_search_mode_is_vectorized_over_http(running_server):
    """A modeless GET /search must reach the vectorized engine — the
    transport default is ``auto``, resolved by the service layer."""
    query_id = running_server.service.manager.current.corpus[0].object_id
    payload = json.loads(_get(running_server, f"/search?query={query_id}&k=3")[1])
    assert payload["mode"] == "index-vectorized"
    explicit = json.loads(
        _get(running_server, f"/search?query={query_id}&k=3&mode=index-vectorized")[1]
    )
    assert explicit["results"] == payload["results"]
    assert explicit["cached"] is True  # same cache entry as the default


def test_default_similar_mode_is_vectorized_over_http(running_server):
    status, body = _post(running_server, "/similar", {"tags": ["tag1"], "k": 3})
    assert status == 200
    assert json.loads(body)["mode"] == "index-vectorized"


def test_admin_reload_bumps_generation_and_empties_cache(running_server):
    service = running_server.service
    query_id = service.manager.current.corpus[0].object_id
    _get(running_server, f"/search?query={query_id}&k=3")
    status, body = _post(running_server, "/admin/reload")
    assert status == 200
    payload = json.loads(body)
    assert payload["generation"] == 2
    assert payload["cache_entries_dropped"] == 1
    fresh = json.loads(_get(running_server, f"/search?query={query_id}&k=3")[1])
    assert fresh["generation"] == 2
    assert fresh["cached"] is False


def test_unknown_route_is_404(running_server):
    with pytest.raises(urllib.error.HTTPError) as err:
        _get(running_server, "/nope")
    assert err.value.code == 404


def test_unknown_object_id_is_404_json(running_server):
    with pytest.raises(urllib.error.HTTPError) as err:
        _get(running_server, "/search?query=ghost")
    assert err.value.code == 404
    assert "unknown object id" in json.loads(err.value.read().decode())["error"]


def test_bad_k_is_400(running_server):
    query_id = running_server.service.manager.current.corpus[0].object_id
    with pytest.raises(urllib.error.HTTPError) as err:
        _get(running_server, f"/search?query={query_id}&k=zero")
    assert err.value.code == 400


def test_malformed_json_body_is_400(running_server):
    request = urllib.request.Request(
        f"http://127.0.0.1:{running_server.port}/search",
        data=b"{not json",
        headers={"Content-Type": "application/json"},
    )
    with pytest.raises(urllib.error.HTTPError) as err:
        urllib.request.urlopen(request)
    assert err.value.code == 400


def test_saturated_server_answers_503_with_retry_after(running_server):
    """Exhaust the in-flight permits, then observe admission control."""
    permits = running_server.max_in_flight
    for _ in range(permits):
        assert running_server.admission.acquire(blocking=False)
    try:
        query_id = running_server.service.manager.current.corpus[0].object_id
        with pytest.raises(urllib.error.HTTPError) as err:
            _get(running_server, f"/search?query={query_id}")
        assert err.value.code == 503
        assert err.value.headers["Retry-After"] == "1"
        # healthz is not admission controlled: stays up under saturation
        assert _get(running_server, "/healthz")[0] == 200
    finally:
        for _ in range(permits):
            running_server.admission.release()
    # permits released: queries flow again
    assert _get(running_server, f"/search?query={query_id}")[0] == 200
    _, metrics = _get(running_server, "/metrics")
    assert "repro_rejected_requests_total 1" in metrics


def test_max_in_flight_must_be_positive(rec_corpus_dir):
    manager = SnapshotManager(rec_corpus_dir)
    manager.load()
    with pytest.raises(ValueError):
        create_server(QueryService(manager), port=0, max_in_flight=0)


def test_graceful_shutdown_finishes_cleanly(rec_corpus_dir):
    """shutdown() + server_close() must join every handler thread."""
    manager = SnapshotManager(rec_corpus_dir)
    manager.load()
    server = create_server(QueryService(manager), port=0, max_in_flight=2)
    thread = threading.Thread(target=server.serve_forever)
    thread.start()
    assert _get(server, "/healthz")[0] == 200
    server.shutdown()
    thread.join(timeout=10)
    assert not thread.is_alive()
    server.server_close()
