"""Serving fixtures: corpora saved to disk and warm snapshot managers.

Module-expensive state (saved corpus directories, loaded snapshots) is
session-scoped; tests must not mutate the shared manager — tests that
reload build their own.
"""

from __future__ import annotations

import pytest

from repro.serving.cache import ResultCache
from repro.serving.service import QueryService
from repro.serving.snapshot import SnapshotManager
from repro.storage.store import save_corpus


@pytest.fixture(scope="session")
def rec_corpus_dir(tmp_path_factory, rec_corpus):
    """The recommendation corpus (favorites + tracked users) on disk —
    exercises both /search and /recommend."""
    path = tmp_path_factory.mktemp("serving") / "rec"
    save_corpus(rec_corpus, path)
    return str(path)


@pytest.fixture(scope="session")
def tiny_corpus_dir(tmp_path_factory, tiny_corpus):
    """The retrieval-only corpus on disk (no favorite events)."""
    path = tmp_path_factory.mktemp("serving") / "tiny"
    save_corpus(tiny_corpus, path)
    return str(path)


@pytest.fixture(scope="session")
def loaded_manager(rec_corpus_dir):
    """Warm snapshot manager over the recommendation corpus; shared by
    read-only tests (none of which may reload it)."""
    manager = SnapshotManager(rec_corpus_dir, clock=lambda: 1000.0)
    manager.load()
    return manager


@pytest.fixture()
def service(loaded_manager):
    """Fresh service (own cache + metrics) over the shared snapshot."""
    return QueryService(loaded_manager, cache=ResultCache(128))
