"""Metrics registry and Prometheus text rendering."""

from __future__ import annotations

import json
import threading

import pytest

from repro.serving.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    escape_label_value,
    format_value,
    merge_dumps,
    render_dump,
)


def test_counter_increments_and_renders():
    counter = Counter("repro_things_total", "Things.")
    counter.inc()
    counter.inc(2.0)
    assert counter.value() == 3.0
    lines = counter.render()
    assert "# HELP repro_things_total Things." in lines
    assert "# TYPE repro_things_total counter" in lines
    assert "repro_things_total 3" in lines


def test_counter_labels_render_sorted():
    counter = Counter("repro_req_total", "Reqs.", label_names=("endpoint", "status"))
    counter.inc(endpoint="search", status="200")
    counter.inc(endpoint="search", status="200")
    counter.inc(endpoint="recommend", status="404")
    lines = counter.render()
    assert 'repro_req_total{endpoint="recommend",status="404"} 1' in lines
    assert 'repro_req_total{endpoint="search",status="200"} 2' in lines


def test_counter_rejects_negative_and_wrong_labels():
    counter = Counter("c_total", "C.", label_names=("endpoint",))
    with pytest.raises(ValueError):
        counter.inc(-1.0, endpoint="x")
    with pytest.raises(ValueError):
        counter.inc(status="200")


def test_unlabelled_counter_renders_zero_sample():
    assert "c_total 0" in Counter("c_total", "C.").render()


def test_gauge_sets_and_overrides_kind():
    gauge = Gauge("repro_cache_hits_total", "Hits.", kind_override="counter")
    gauge.set(7)
    lines = gauge.render()
    assert "# TYPE repro_cache_hits_total counter" in lines
    assert "repro_cache_hits_total 7" in lines
    gauge.set(9)
    assert gauge.value() == 9.0


def test_histogram_buckets_are_cumulative():
    hist = Histogram("repro_latency_seconds", "Latency.", buckets=(0.01, 0.1, 1.0))
    for value in (0.005, 0.05, 0.5, 5.0):
        hist.observe(value)
    lines = hist.render()
    assert 'repro_latency_seconds_bucket{le="0.01"} 1' in lines
    assert 'repro_latency_seconds_bucket{le="0.1"} 2' in lines
    assert 'repro_latency_seconds_bucket{le="1"} 3' in lines
    assert 'repro_latency_seconds_bucket{le="+Inf"} 4' in lines
    assert "repro_latency_seconds_count 4" in lines
    assert hist.count() == 4


def test_histogram_rejects_unsorted_buckets():
    with pytest.raises(ValueError):
        Histogram("h", "H.", buckets=(1.0, 0.1))


def test_registry_get_or_create_is_idempotent():
    registry = MetricsRegistry()
    a = registry.counter("repro_x_total", "X.")
    b = registry.counter("repro_x_total", "X.")
    assert a is b
    with pytest.raises(ValueError):
        registry.gauge("repro_x_total", "X.")


def test_registry_render_orders_by_name_and_terminates_with_newline():
    registry = MetricsRegistry()
    registry.counter("repro_b_total", "B.").inc()
    registry.counter("repro_a_total", "A.").inc()
    text = registry.render()
    assert text.index("repro_a_total") < text.index("repro_b_total")
    assert text.endswith("\n")


def test_format_value_integers_render_bare():
    assert format_value(3.0) == "3"
    assert format_value(0.25) == "0.25"


def test_label_escaping():
    assert escape_label_value('a"b\\c\nd') == 'a\\"b\\\\c\\nd'


def test_concurrent_increments_do_not_lose_updates():
    counter = Counter("c_total", "C.")

    def worker() -> None:
        for _ in range(1000):
            counter.inc()

    threads = [threading.Thread(target=worker) for _ in range(8)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert counter.value() == 8000.0


# ----------------------------------------------------------------------
# dump / merge / render: the prefork cross-process scrape path
# ----------------------------------------------------------------------
def _worker_registry(requests: int, generation: int) -> MetricsRegistry:
    """A registry shaped like one serving worker's."""
    registry = MetricsRegistry()
    counter = registry.counter(
        "repro_requests_total", "Requests.", label_names=("endpoint", "status")
    )
    counter.inc(float(requests), endpoint="search", status="200")
    registry.gauge("repro_snapshot_generation", "Generation.").set(generation)
    registry.gauge("repro_result_cache_entries", "Entries.").set(float(requests))
    hist = registry.histogram(
        "repro_request_latency_seconds", "Latency.", buckets=(0.01, 0.1, 1.0)
    )
    for _ in range(requests):
        hist.observe(0.05)
    return registry


def test_dump_round_trips_through_render():
    """``render_dump(registry.dump())`` must equal ``registry.render()``
    — one scrape format, whether local or merged."""
    registry = _worker_registry(3, 1)
    assert render_dump(registry.dump()) == registry.render()


def test_merge_sums_counters_and_histograms():
    merged = merge_dumps([_worker_registry(3, 1).dump(), _worker_registry(5, 1).dump()])
    requests = merged["metrics"]["repro_requests_total"]
    assert requests["values"] == [[["search", "200"], 8.0]]
    hist = merged["metrics"]["repro_request_latency_seconds"]
    [[labels, counts, total, count]] = hist["rows"]
    assert count == 8
    assert counts == [0, 8, 8]
    assert total == pytest.approx(0.4)


def test_merge_takes_max_for_snapshot_gauges_and_sums_the_rest():
    """During a coordinated reload workers may briefly disagree on the
    generation: the cluster gauge reports the newest, while additive
    gauges (cache entries) sum across workers."""
    merged = merge_dumps([_worker_registry(3, 1).dump(), _worker_registry(5, 2).dump()])
    assert merged["metrics"]["repro_snapshot_generation"]["values"] == [[[], 2.0]]
    assert merged["metrics"]["repro_result_cache_entries"]["values"] == [[[], 8.0]]


def test_merge_keeps_counter_kind_override():
    """Cache-total gauges dump as counters (their exposed kind), so the
    merged exposition types them correctly and sums them."""
    def one(value: float) -> MetricsRegistry:
        registry = MetricsRegistry()
        registry.gauge(
            "repro_result_cache_hits_total", "Hits.", kind_override="counter"
        ).set(value)
        return registry

    merged = merge_dumps([one(2.0).dump(), one(3.0).dump()])
    entry = merged["metrics"]["repro_result_cache_hits_total"]
    assert entry["kind"] == "counter"
    assert entry["values"] == [[[], 5.0]]
    assert "# TYPE repro_result_cache_hits_total counter" in render_dump(merged)


def test_merge_union_of_disjoint_metrics_and_labelsets():
    a = MetricsRegistry()
    a.counter("repro_a_total", "A.", label_names=("shard",)).inc(shard="0")
    b = MetricsRegistry()
    b.counter("repro_a_total", "A.", label_names=("shard",)).inc(2.0, shard="1")
    b.counter("repro_b_total", "B.").inc()
    merged = merge_dumps([a.dump(), b.dump()])
    assert merged["metrics"]["repro_a_total"]["values"] == [
        [["0"], 1.0],
        [["1"], 2.0],
    ]
    assert merged["metrics"]["repro_b_total"]["values"] == [[[], 1.0]]


def test_merge_does_not_mutate_input_dumps():
    registry = _worker_registry(3, 1)
    dump = registry.dump()
    before = json.loads(json.dumps(dump))
    merge_dumps([dump, _worker_registry(5, 1).dump()])
    assert dump == before


def test_merge_rejects_bucket_and_kind_mismatches():
    a = MetricsRegistry()
    a.histogram("h_seconds", "H.", buckets=(0.1, 1.0)).observe(0.05)
    b = MetricsRegistry()
    b.histogram("h_seconds", "H.", buckets=(0.2, 2.0)).observe(0.05)
    with pytest.raises(ValueError):
        merge_dumps([a.dump(), b.dump()])
    c = MetricsRegistry()
    c.counter("x_total", "X.").inc()
    d = MetricsRegistry()
    d.gauge("x_total", "X.").set(1.0)
    with pytest.raises(ValueError):
        merge_dumps([c.dump(), d.dump()])


def test_registry_hammer_from_many_threads():
    """Regression hammer for the lock-discipline audit: concurrent
    get-or-create, labelled counter increments, gauge sets, histogram
    observations and renders must neither lose updates nor raise.

    The lock checker (LK101) confirms statically that every access to
    the registry's and metrics' shared dicts is under their locks; this
    test is the dynamic witness pinning that contract.
    """
    registry = MetricsRegistry()
    n_threads, n_iter = 8, 300
    errors: list[Exception] = []
    start = threading.Barrier(n_threads)

    def worker(tid: int) -> None:
        try:
            start.wait()
            for i in range(n_iter):
                # get_or_create races: every thread asks for the same
                # metrics and must receive the same instances.
                counter = registry.counter("hammer_total", "H.", label_names=("shard",))
                gauge = registry.gauge("hammer_gauge", "G.")
                histogram = registry.histogram(
                    "hammer_seconds", "S.", buckets=(0.1, 1.0, 10.0)
                )
                counter.inc(shard=str(tid % 2))
                gauge.set(float(i))
                histogram.observe(0.05 * (i % 40))
                if i % 50 == 0:
                    registry.render()
        except Exception as exc:  # pragma: no cover - failure path
            errors.append(exc)

    threads = [threading.Thread(target=worker, args=(t,)) for t in range(n_threads)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert errors == []
    counter = registry.counter("hammer_total", "H.", label_names=("shard",))
    total = counter.value(shard="0") + counter.value(shard="1")
    assert total == float(n_threads * n_iter)
    histogram = registry.histogram("hammer_seconds", "S.", buckets=(0.1, 1.0, 10.0))
    assert histogram.count() == n_threads * n_iter
    rendered = registry.render()
    assert "hammer_total" in rendered and "hammer_seconds" in rendered
