"""Transport-independent handlers: parity with the batch engines,
cache semantics, reload, validation errors."""

from __future__ import annotations

import pytest

from repro.core.mrf import MRFParameters
from repro.core.recommendation import Recommender
from repro.core.retrieval import RetrievalEngine
from repro.serving.cache import ResultCache
from repro.serving.service import QueryService, ServiceError
from repro.serving.snapshot import SnapshotManager
from repro.storage.store import load_corpus


# ----------------------------------------------------------------------
# parity with the batch path
# ----------------------------------------------------------------------
def test_search_matches_batch_engine_bit_for_bit(service, rec_corpus_dir):
    """Served rankings must equal what `repro search` computes from the
    same corpus directory: identical ids AND identical float scores."""
    corpus = load_corpus(rec_corpus_dir)
    batch = RetrievalEngine(corpus)
    for query_id in [corpus[0].object_id, corpus[7].object_id]:
        served = service.search(query=query_id, k=5)
        expected = batch.search(corpus.get(query_id), k=5)
        assert served["results"] == [
            {"object_id": r.object_id, "score": r.score} for r in expected
        ]


def test_search_scan_mode_matches_batch_scan(service, rec_corpus_dir):
    corpus = load_corpus(rec_corpus_dir)
    batch = RetrievalEngine(corpus, build_index=False)
    query_id = corpus[3].object_id
    served = service.search(query=query_id, k=4, mode="scan")
    expected = batch.search(corpus.get(query_id), k=4, mode="scan")
    assert served["results"] == [
        {"object_id": r.object_id, "score": r.score} for r in expected
    ]


def test_recommend_matches_batch_recommender(service, rec_corpus_dir):
    corpus = load_corpus(rec_corpus_dir)
    user = corpus.favorite_users()[0]
    batch = Recommender(corpus, params=MRFParameters(delta=1.0))
    served = service.recommend(user=user, k=5)
    expected = batch.recommend(user, k=5)
    assert served["results"] == [
        {"object_id": r.object_id, "score": r.score} for r in expected
    ]


def test_recommend_with_delta_matches_fig_t(service, rec_corpus_dir):
    corpus = load_corpus(rec_corpus_dir)
    user = corpus.favorite_users()[1]
    batch = Recommender(corpus, params=MRFParameters(delta=0.5))
    served = service.recommend(user=user, k=5, delta=0.5)
    expected = batch.recommend(user, k=5)
    assert served["delta"] == 0.5
    assert served["results"] == [
        {"object_id": r.object_id, "score": r.score} for r in expected
    ]


def test_similar_free_form_bag(service, loaded_manager):
    """An ad-hoc bag not stored in the corpus searches without error and
    matches a direct engine query on the same synthetic object."""
    from repro.core.objects import FeatureType, MediaObject

    snapshot = loaded_manager.current
    donor = snapshot.corpus[0]
    tags = [f.name for f in donor.features_of_type(FeatureType.TEXT)][:3]
    served = service.similar(tags=tags, k=5)
    query = MediaObject.build("query:ad-hoc", tags=sorted(tags))
    expected = snapshot.engine.search(query, k=5, exclude_query=False)
    assert served["results"] == [
        {"object_id": r.object_id, "score": r.score} for r in expected
    ]


# ----------------------------------------------------------------------
# cache behaviour
# ----------------------------------------------------------------------
def test_repeated_search_is_served_from_cache(service, loaded_manager):
    query_id = loaded_manager.current.corpus[0].object_id
    first = service.search(query=query_id, k=3)
    second = service.search(query=query_id, k=3)
    assert first["cached"] is False
    assert second["cached"] is True
    assert first["results"] == second["results"]
    stats = service.cache.stats()
    assert stats.hits == 1


def test_different_k_or_mode_is_a_different_entry(service, loaded_manager):
    query_id = loaded_manager.current.corpus[0].object_id
    service.search(query=query_id, k=3)
    assert service.search(query=query_id, k=4)["cached"] is False
    assert service.search(query=query_id, k=3, mode="scan")["cached"] is False
    assert service.search(query=query_id, k=3)["cached"] is True


def test_cache_hit_counter_visible_in_metrics(service, loaded_manager):
    query_id = loaded_manager.current.corpus[0].object_id
    service.search(query=query_id, k=3)
    service.search(query=query_id, k=3)
    text = service.metrics_text()
    assert "repro_result_cache_hits_total 1" in text
    assert "# TYPE repro_result_cache_hits_total counter" in text


# ----------------------------------------------------------------------
# reload
# ----------------------------------------------------------------------
def test_reload_bumps_generation_and_empties_cache(rec_corpus_dir):
    manager = SnapshotManager(rec_corpus_dir)
    manager.load()
    service = QueryService(manager, cache=ResultCache(64))
    query_id = manager.current.corpus[0].object_id
    before = service.search(query=query_id, k=3)
    assert len(service.cache) == 1
    outcome = service.reload()
    assert outcome["generation"] == before["generation"] + 1
    assert outcome["cache_entries_dropped"] == 1
    assert len(service.cache) == 0
    after = service.search(query=query_id, k=3)
    assert after["cached"] is False
    assert after["generation"] == outcome["generation"]
    # same corpus on disk -> same ranking across generations
    assert after["results"] == before["results"]


# ----------------------------------------------------------------------
# validation and error mapping
# ----------------------------------------------------------------------
@pytest.mark.parametrize(
    "kwargs, status",
    [
        ({"query": ""}, 400),
        ({"query": None}, 400),
        ({"query": "obj000000", "k": 0}, 400),
        ({"query": "obj000000", "k": "many"}, 400),
        ({"query": "obj000000", "k": 10_000}, 400),
        ({"query": "obj000000", "mode": "warp"}, 400),
        ({"query": "ghost"}, 404),
    ],
)
def test_search_error_statuses(service, kwargs, status):
    with pytest.raises(ServiceError) as err:
        service.search(**kwargs)
    assert err.value.status == status


def test_recommend_unknown_user_is_404(service):
    with pytest.raises(ServiceError) as err:
        service.recommend(user="nobody")
    assert err.value.status == 404


def test_recommend_bad_delta_is_400(service, rec_corpus_dir):
    corpus = load_corpus(rec_corpus_dir)
    user = corpus.favorite_users()[0]
    with pytest.raises(ServiceError) as err:
        service.recommend(user=user, delta=2.5)
    assert err.value.status == 400


def test_recommend_without_favorites_is_409(tiny_corpus_dir):
    manager = SnapshotManager(tiny_corpus_dir)
    manager.load()
    service = QueryService(manager)
    with pytest.raises(ServiceError) as err:
        service.recommend(user="u0")
    assert err.value.status == 409


def test_similar_requires_some_bag(service):
    with pytest.raises(ServiceError) as err:
        service.similar()
    assert err.value.status == 400
    with pytest.raises(ServiceError) as err:
        service.similar(tags="notalist")
    assert err.value.status == 400


def test_unloaded_manager_maps_to_503(rec_corpus_dir):
    service = QueryService(SnapshotManager(rec_corpus_dir))
    with pytest.raises(ServiceError) as err:
        service.search(query="obj000000")
    assert err.value.status == 503


# ----------------------------------------------------------------------
# introspection
# ----------------------------------------------------------------------
def test_healthz_and_stats(service, loaded_manager):
    health = service.healthz()
    assert health["status"] == "ok"
    assert health["generation"] == loaded_manager.generation
    assert health["recommendation"] is True
    stats = service.stats()
    assert stats["snapshot"]["objects"] == loaded_manager.current.n_objects
    assert stats["cache"]["capacity"] == 128


def test_stats_reports_index_provenance(service, loaded_manager):
    from repro.storage.store import BINARY_INDEX_FORMAT_VERSION

    index_stats = service.stats()["index"]
    prov = loaded_manager.current.index_provenance
    assert index_stats["origin"] == prov.origin == "built"
    assert index_stats["build_seconds"] == prov.build_seconds
    assert index_stats["cliques"] == prov.n_cliques
    assert index_stats["postings"] == prov.total_postings
    # a built snapshot reports the current default save format (v3 binary)
    assert index_stats["format_version"] == BINARY_INDEX_FORMAT_VERSION


def test_stats_index_provenance_loaded_artifact(tmp_path, tiny_corpus):
    """A snapshot that picked up ``index.jsonl`` reports itself as
    loaded-from-artifact through the stats endpoint."""
    from repro.serving.snapshot import build_snapshot
    from repro.storage.store import save_corpus, save_index

    path = tmp_path / "corpus"
    save_corpus(tiny_corpus, path)
    built = build_snapshot(path, generation=1)
    save_index(built.engine.index, path / "index.jsonl")

    manager = SnapshotManager(path)
    manager.load()
    service = QueryService(manager, cache=ResultCache(8))
    index_stats = service.stats()["index"]
    assert index_stats["origin"] == "loaded"
    assert index_stats["postings"] > 0


def test_stats_no_index_reports_none(tmp_path, tiny_corpus):
    from repro.storage.store import save_corpus

    path = tmp_path / "corpus"
    save_corpus(tiny_corpus, path)
    manager = SnapshotManager(path, build_index=False)
    manager.load()
    service = QueryService(manager, cache=ResultCache(8))
    assert service.stats()["index"] is None


def test_metrics_text_reports_snapshot_age(service):
    text = service.metrics_text(now=1060.0)  # manager clock stamped 1000.0
    assert "repro_snapshot_age_seconds 60" in text
    assert "repro_snapshot_generation 1" in text


def test_stats_reports_payload_verified(service):
    assert service.stats()["index"]["payload_verified"] is True


def test_search_vectorized_mode_matches_index_mode(service, rec_corpus_dir):
    corpus = load_corpus(rec_corpus_dir)
    batch = RetrievalEngine(corpus)
    query_id = corpus[5].object_id
    served = service.search(query=query_id, k=4, mode="index-vectorized")
    expected = batch.search(corpus.get(query_id), k=4, mode="index")
    assert served["results"] == [
        {"object_id": r.object_id, "score": r.score} for r in expected
    ]


# ----------------------------------------------------------------------
# mode resolution (the stale "index" default regression class)
# ----------------------------------------------------------------------
def test_default_mode_resolves_to_vectorized(service, loaded_manager):
    """With no mode argument the service must run the vectorized engine
    — the payload reports the *resolved* mode, not the ``auto`` alias."""
    query_id = loaded_manager.current.corpus[0].object_id
    assert service.search(query=query_id, k=3)["mode"] == "index-vectorized"
    assert service.similar(tags=["tag1"], k=3)["mode"] == "index-vectorized"


def test_resolve_mode_maps_only_auto():
    from repro.serving.service import resolve_mode

    assert resolve_mode("auto") == "index-vectorized"
    for mode in ("index-vectorized", "index", "scan"):
        assert resolve_mode(mode) == mode


def test_auto_and_vectorized_share_one_cache_entry(service, loaded_manager):
    """``auto`` and ``index-vectorized`` rank identically; keying the
    cache on the resolved mode keeps them from double-populating it."""
    query_id = loaded_manager.current.corpus[0].object_id
    first = service.search(query=query_id, k=3, mode="auto")
    assert first["cached"] is False
    assert service.search(query=query_id, k=3, mode="index-vectorized")["cached"] is True
    assert service.search(query=query_id, k=3)["cached"] is True
    assert len(service.cache) == 1
    # the scalar walk is a genuinely different computation: its own entry
    assert service.search(query=query_id, k=3, mode="index")["cached"] is False
    assert len(service.cache) == 2


def test_similar_auto_and_vectorized_share_one_cache_entry(service):
    assert service.similar(tags=["tag1"], k=3, mode="auto")["cached"] is False
    assert service.similar(tags=["tag1"], k=3, mode="index-vectorized")["cached"] is True
    assert len(service.cache) == 1


def test_repeated_recommend_is_served_from_cache(service, rec_corpus_dir):
    corpus = load_corpus(rec_corpus_dir)
    user = corpus.favorite_users()[0]
    assert service.recommend(user=user, k=3)["cached"] is False
    assert service.recommend(user=user, k=3)["cached"] is True
    # a different delta is a different computation -> its own entry
    assert service.recommend(user=user, k=3, delta=0.5)["cached"] is False
