"""LRU result cache: recency, eviction accounting, thread safety."""

from __future__ import annotations

import threading

import pytest

from repro.serving.cache import ResultCache, result_cache_key


def test_get_miss_then_hit():
    cache = ResultCache(4)
    key = result_cache_key(1, "search", "obj1", 10, "index")
    assert cache.get(key) is None
    cache.put(key, {"results": []})
    assert cache.get(key) == {"results": []}
    stats = cache.stats()
    assert (stats.hits, stats.misses) == (1, 1)


def test_lru_evicts_least_recently_used():
    cache = ResultCache(2)
    cache.put(("a",), 1)
    cache.put(("b",), 2)
    assert cache.get(("a",)) == 1  # refresh "a": "b" is now LRU
    cache.put(("c",), 3)
    assert cache.get(("b",)) is None
    assert cache.get(("a",)) == 1
    assert cache.get(("c",)) == 3
    assert cache.stats().evictions == 1


def test_eviction_keeps_size_bounded():
    cache = ResultCache(8)
    for i in range(50):
        cache.put((i,), i)
    stats = cache.stats()
    assert stats.size == 8
    assert stats.evictions == 42


def test_generation_prefix_separates_snapshots():
    """The same logical query under two generations must not collide."""
    cache = ResultCache(8)
    old = result_cache_key(1, "search", "obj1", 10, "index")
    new = result_cache_key(2, "search", "obj1", 10, "index")
    cache.put(old, "old")
    assert cache.get(new) is None
    cache.put(new, "new")
    assert cache.get(old) == "old"
    assert cache.get(new) == "new"


def test_clear_drops_entries_but_keeps_counters():
    cache = ResultCache(8)
    cache.put(("a",), 1)
    cache.get(("a",))
    assert cache.clear() == 1
    stats = cache.stats()
    assert stats.size == 0
    assert stats.hits == 1
    assert cache.get(("a",)) is None


def test_zero_capacity_disables_caching():
    cache = ResultCache(0)
    cache.put(("a",), 1)
    assert cache.get(("a",)) is None
    assert len(cache) == 0


def test_negative_capacity_rejected():
    with pytest.raises(ValueError):
        ResultCache(-1)


def test_concurrent_mixed_access_is_consistent():
    cache = ResultCache(32)
    errors: list[Exception] = []

    def worker(seed: int) -> None:
        try:
            for i in range(200):
                key = ((seed * 7 + i) % 48,)
                if cache.get(key) is None:
                    cache.put(key, i)
        except Exception as exc:  # pragma: no cover - only on failure
            errors.append(exc)

    threads = [threading.Thread(target=worker, args=(s,)) for s in range(8)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert errors == []
    stats = cache.stats()
    assert stats.size <= 32
    assert stats.hits + stats.misses == 8 * 200
