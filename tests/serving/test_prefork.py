"""Prefork worker pool: parity, aggregation, reload, crash recovery.

The pool forks real worker processes, so the whole scenario runs in one
end-to-end test over a module-scoped corpus directory — starting a pool
per assertion would dominate the suite's runtime.  Single-process
behaviour (the reference the pool must match bit-for-bit) comes from a
:class:`QueryService` over the same saved corpus + ``index.bin``.
"""

from __future__ import annotations

import json
import os
import signal
import threading
import time
import urllib.request

import pytest

from repro.core.retrieval import RetrievalEngine
from repro.index.inverted import CliqueInvertedIndex
from repro.serving.cache import ResultCache
from repro.serving.prefork import PreforkServer
from repro.serving.service import QueryService
from repro.serving.snapshot import SnapshotManager
from repro.storage.store import save_corpus, save_index

pytestmark = pytest.mark.skipif(
    not hasattr(os, "fork"), reason="prefork serving requires POSIX fork"
)


@pytest.fixture(scope="module")
def indexed_corpus_dir(tmp_path_factory, tiny_corpus):
    """The retrieval corpus saved with its v3 binary index artifact, so
    every forked worker maps the same read-only ``index.bin`` pages."""
    path = tmp_path_factory.mktemp("prefork") / "corpus"
    save_corpus(tiny_corpus, path)
    engine = RetrievalEngine(tiny_corpus, build_index=False)
    index = CliqueInvertedIndex(
        engine.correlations, max_clique_size=engine.params.max_clique_size
    ).build(tiny_corpus)
    save_index(index, path / "index.bin")
    return path


def _get(port: int, path: str) -> bytes:
    with urllib.request.urlopen(f"http://127.0.0.1:{port}{path}", timeout=60) as r:
        return r.read()


def _post(port: int, path: str) -> bytes:
    request = urllib.request.Request(
        f"http://127.0.0.1:{port}{path}",
        data=b"{}",
        method="POST",
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request, timeout=300) as r:
        return r.read()


def test_workers_must_be_positive(indexed_corpus_dir):
    with pytest.raises(ValueError):
        PreforkServer(indexed_corpus_dir, workers=0)


def test_prefork_end_to_end(indexed_corpus_dir, tiny_corpus):
    """One pool lifecycle: default-mode parity with a single-process
    service, aggregated metrics/stats, coordinated reload, crash
    restart, graceful drain."""
    manager = SnapshotManager(indexed_corpus_dir)
    manager.load()
    reference_service = QueryService(manager, cache=ResultCache(64))
    query_ids = [obj.object_id for obj in list(tiny_corpus)[:5]]
    reference = {q: reference_service.search(query=q, k=10) for q in query_ids}
    assert reference[query_ids[0]]["mode"] == "index-vectorized"

    pool = PreforkServer(indexed_corpus_dir, workers=2, port=0, grace=5.0)
    pool.start()
    runner = threading.Thread(target=pool.run)
    runner.start()
    try:
        port = pool.port
        assert json.loads(_get(port, "/healthz"))["status"] == "ok"

        # -- default /search is bit-identical to the single-process path
        for query_id, expected in reference.items():
            payload = json.loads(_get(port, f"/search?query={query_id}&k=10"))
            assert payload["mode"] == "index-vectorized"
            assert payload["results"] == expected["results"]

        # -- /metrics aggregates every worker plus the supervisor
        text = _get(port, "/metrics").decode()
        assert "repro_prefork_workers 2" in text
        assert 'repro_requests_total{endpoint="search",status="200"}' in text

        # -- /stats reports the cluster shape
        stats = json.loads(_get(port, "/stats"))
        assert stats["cluster"]["workers"] == 2
        assert len(stats["workers"]) == 2

        # -- coordinated reload bumps every worker to the new generation
        outcome = json.loads(_post(port, "/admin/reload"))
        assert outcome["generation"] == 2
        worker_generations = [
            entry.get("result", entry).get("generation")
            for entry in outcome["workers"]
        ]
        assert worker_generations == [2, 2]
        payload = json.loads(_get(port, f"/search?query={query_ids[0]}&k=10"))
        assert payload["generation"] == 2
        assert payload["results"] == reference[query_ids[0]]["results"]

        # -- a SIGKILLed worker is respawned by the supervisor
        victim = pool.worker_pids()[0]
        os.kill(victim, signal.SIGKILL)
        deadline = time.monotonic() + 30
        while time.monotonic() < deadline:
            pids = pool.worker_pids()
            if len(pids) == 2 and victim not in pids:
                break
            time.sleep(0.2)
        else:
            pytest.fail(f"worker {victim} not respawned: {pool.worker_pids()}")
        payload = json.loads(_get(port, f"/search?query={query_ids[1]}&k=10"))
        assert payload["results"] == reference[query_ids[1]]["results"]
    finally:
        pool.request_shutdown()
        runner.join(timeout=60)
    assert not runner.is_alive()
    assert pool.workers == 0
