"""Snapshot lifecycle: load, hot-reload, generation monotonicity."""

from __future__ import annotations

import pytest

from repro.core.mrf import MRFParameters
from repro.serving.snapshot import SnapshotManager, build_snapshot
from repro.storage.store import StorageError, save_params


def test_current_before_load_raises(rec_corpus_dir):
    manager = SnapshotManager(rec_corpus_dir)
    with pytest.raises(RuntimeError):
        manager.current
    assert manager.generation == 0


def test_load_produces_generation_one(rec_corpus_dir, rec_corpus):
    manager = SnapshotManager(rec_corpus_dir, clock=lambda: 123.0)
    snapshot = manager.load()
    assert snapshot.generation == 1
    assert snapshot.loaded_at == 123.0
    assert snapshot.n_objects == len(rec_corpus)
    assert snapshot.recommender is not None
    assert manager.current is snapshot


def test_retrieval_only_corpus_has_no_recommender(tiny_corpus_dir):
    snapshot = SnapshotManager(tiny_corpus_dir).load()
    assert snapshot.recommender is None


def test_reload_bumps_generation_and_swaps_reference(rec_corpus_dir):
    manager = SnapshotManager(rec_corpus_dir)
    first = manager.load()
    second = manager.reload()
    assert second.generation == first.generation + 1
    assert manager.current is second
    assert second.engine is not first.engine
    # the drained snapshot keeps answering queries for in-flight requests
    hits = first.engine.search(first.corpus[0], k=3)
    assert len(hits) == 3


def test_failed_reload_leaves_current_snapshot(rec_corpus_dir, tmp_path):
    manager = SnapshotManager(rec_corpus_dir)
    snapshot = manager.load()
    manager._corpus_dir = tmp_path / "nope"  # simulate the directory vanishing
    with pytest.raises(StorageError):
        manager.reload()
    assert manager.current is snapshot
    assert manager.generation == snapshot.generation


def test_params_json_next_to_corpus_is_picked_up(rec_corpus_dir, tmp_path, rec_corpus):
    from repro.storage.store import save_corpus

    corpus_dir = tmp_path / "with-params"
    save_corpus(rec_corpus, corpus_dir)
    save_params(MRFParameters(alpha=0.25, delta=0.5), corpus_dir / "params.json")
    snapshot = build_snapshot(corpus_dir, generation=1, loaded_at=0.0)
    assert snapshot.engine.params.alpha == 0.25
    assert snapshot.recommender is not None
    assert snapshot.recommender.params.delta == 0.5


def test_explicit_params_win_over_disk(rec_corpus_dir):
    params = MRFParameters(alpha=0.75)
    snapshot = build_snapshot(rec_corpus_dir, generation=1, params=params, loaded_at=0.0)
    assert snapshot.engine.params is params


def test_snapshot_results_match_fresh_engine(rec_corpus_dir, rec_corpus):
    """The warm engine answers exactly like a cold batch-CLI engine."""
    from repro.core.retrieval import RetrievalEngine
    from repro.storage.store import load_corpus

    snapshot = build_snapshot(rec_corpus_dir, generation=1, loaded_at=0.0)
    cold = RetrievalEngine(load_corpus(rec_corpus_dir))
    query = snapshot.corpus[0]
    assert snapshot.engine.search(query, k=5) == cold.search(cold.corpus.get(query.object_id), k=5)
