"""Snapshot lifecycle: load, hot-reload, generation monotonicity."""

from __future__ import annotations

import pytest

from repro.core.mrf import MRFParameters
from repro.serving.snapshot import SnapshotManager, build_snapshot
from repro.storage.store import StorageError, save_params


def test_current_before_load_raises(rec_corpus_dir):
    manager = SnapshotManager(rec_corpus_dir)
    with pytest.raises(RuntimeError):
        manager.current
    assert manager.generation == 0


def test_load_produces_generation_one(rec_corpus_dir, rec_corpus):
    manager = SnapshotManager(rec_corpus_dir, clock=lambda: 123.0)
    snapshot = manager.load()
    assert snapshot.generation == 1
    assert snapshot.loaded_at == 123.0
    assert snapshot.n_objects == len(rec_corpus)
    assert snapshot.recommender is not None
    assert manager.current is snapshot


def test_retrieval_only_corpus_has_no_recommender(tiny_corpus_dir):
    snapshot = SnapshotManager(tiny_corpus_dir).load()
    assert snapshot.recommender is None


def test_reload_bumps_generation_and_swaps_reference(rec_corpus_dir):
    manager = SnapshotManager(rec_corpus_dir)
    first = manager.load()
    second = manager.reload()
    assert second.generation == first.generation + 1
    assert manager.current is second
    assert second.engine is not first.engine
    # the drained snapshot keeps answering queries for in-flight requests
    hits = first.engine.search(first.corpus[0], k=3)
    assert len(hits) == 3


def test_failed_reload_leaves_current_snapshot(rec_corpus_dir, tmp_path):
    manager = SnapshotManager(rec_corpus_dir)
    snapshot = manager.load()
    manager._corpus_dir = tmp_path / "nope"  # simulate the directory vanishing
    with pytest.raises(StorageError):
        manager.reload()
    assert manager.current is snapshot
    assert manager.generation == snapshot.generation


def test_params_json_next_to_corpus_is_picked_up(rec_corpus_dir, tmp_path, rec_corpus):
    from repro.storage.store import save_corpus

    corpus_dir = tmp_path / "with-params"
    save_corpus(rec_corpus, corpus_dir)
    save_params(MRFParameters(alpha=0.25, delta=0.5), corpus_dir / "params.json")
    snapshot = build_snapshot(corpus_dir, generation=1, loaded_at=0.0)
    assert snapshot.engine.params.alpha == 0.25
    assert snapshot.recommender is not None
    assert snapshot.recommender.params.delta == 0.5


def test_explicit_params_win_over_disk(rec_corpus_dir):
    params = MRFParameters(alpha=0.75)
    snapshot = build_snapshot(rec_corpus_dir, generation=1, params=params, loaded_at=0.0)
    assert snapshot.engine.params is params


def test_snapshot_results_match_fresh_engine(rec_corpus_dir, rec_corpus):
    """The warm engine answers exactly like a cold batch-CLI engine."""
    from repro.core.retrieval import RetrievalEngine
    from repro.storage.store import load_corpus

    snapshot = build_snapshot(rec_corpus_dir, generation=1, loaded_at=0.0)
    cold = RetrievalEngine(load_corpus(rec_corpus_dir))
    query = snapshot.corpus[0]
    assert snapshot.engine.search(query, k=5) == cold.search(cold.corpus.get(query.object_id), k=5)


# ----------------------------------------------------------------------
# index provenance: built vs loaded-from-artifact
# ----------------------------------------------------------------------
def _corpus_on_disk(tmp_path, corpus):
    from repro.storage.store import save_corpus

    path = tmp_path / "corpus"
    save_corpus(corpus, path)
    return path


def test_fresh_corpus_builds_index(tmp_path, tiny_corpus):
    snapshot = build_snapshot(_corpus_on_disk(tmp_path, tiny_corpus), generation=1)
    prov = snapshot.index_provenance
    assert prov is not None
    assert prov.origin == "built"
    assert prov.build_seconds >= 0.0
    assert prov.n_cliques == len(snapshot.engine.index)
    assert prov.total_postings > 0


def test_index_artifact_next_to_corpus_is_picked_up(tmp_path, tiny_corpus):
    from repro.storage.store import INDEX_FORMAT_VERSION, save_index

    path = _corpus_on_disk(tmp_path, tiny_corpus)
    built = build_snapshot(path, generation=1)
    save_index(built.engine.index, path / "index.jsonl")

    loaded = build_snapshot(path, generation=2)
    prov = loaded.index_provenance
    assert prov.origin == "loaded"
    assert prov.format_version == INDEX_FORMAT_VERSION
    assert prov.n_cliques == len(built.engine.index)
    # the adopted index answers bit-identically to the built one
    query = loaded.corpus[0]
    assert loaded.engine.search(query, k=5) == built.engine.search(query, k=5)


def test_stale_index_artifact_falls_back_to_build(tmp_path, tiny_corpus):
    import json

    from repro.storage.store import save_index

    path = _corpus_on_disk(tmp_path, tiny_corpus)
    built = build_snapshot(path, generation=1)
    artifact = path / "index.jsonl"
    save_index(built.engine.index, artifact)
    # tamper the object count: the snapshot loader must treat the
    # artifact as stale and rebuild rather than serve a partial index
    lines = artifact.read_text().splitlines()
    meta = json.loads(lines[0])
    meta["n_objects"] = 1
    artifact.write_text("\n".join([json.dumps(meta)] + lines[1:]) + "\n")

    snapshot = build_snapshot(path, generation=2)
    assert snapshot.index_provenance.origin == "built"
    assert snapshot.engine.index.n_objects == len(tiny_corpus)


def test_corrupt_index_artifact_falls_back_to_build(tmp_path, tiny_corpus):
    path = _corpus_on_disk(tmp_path, tiny_corpus)
    (path / "index.jsonl").write_text("{broken\n")
    snapshot = build_snapshot(path, generation=1)
    assert snapshot.index_provenance.origin == "built"


def test_binary_artifact_next_to_corpus_is_picked_up(tmp_path, tiny_corpus):
    from repro.storage.store import BINARY_INDEX_FORMAT_VERSION, save_index

    path = _corpus_on_disk(tmp_path, tiny_corpus)
    built = build_snapshot(path, generation=1)
    save_index(built.engine.index, path / "index.bin")

    loaded = build_snapshot(path, generation=2)
    prov = loaded.index_provenance
    assert prov.origin == "loaded"
    assert prov.format_version == BINARY_INDEX_FORMAT_VERSION
    assert prov.n_cliques == len(built.engine.index)
    query = loaded.corpus[0]
    assert loaded.engine.search(query, k=5) == built.engine.search(query, k=5)


def test_binary_artifact_preferred_over_jsonl(tmp_path, tiny_corpus):
    from repro.storage.store import BINARY_INDEX_FORMAT_VERSION, save_index

    path = _corpus_on_disk(tmp_path, tiny_corpus)
    built = build_snapshot(path, generation=1)
    save_index(built.engine.index, path / "index.bin")
    save_index(built.engine.index, path / "index.jsonl")

    loaded = build_snapshot(path, generation=2)
    assert loaded.index_provenance.origin == "loaded"
    assert loaded.index_provenance.format_version == BINARY_INDEX_FORMAT_VERSION


def test_corrupt_binary_falls_back_to_jsonl(tmp_path, tiny_corpus):
    from repro.storage.store import INDEX_FORMAT_VERSION, save_index

    path = _corpus_on_disk(tmp_path, tiny_corpus)
    built = build_snapshot(path, generation=1)
    save_index(built.engine.index, path / "index.jsonl")
    (path / "index.bin").write_bytes(b"RPROIDX3 but then garbage")

    loaded = build_snapshot(path, generation=2)
    assert loaded.index_provenance.origin == "loaded"
    assert loaded.index_provenance.format_version == INDEX_FORMAT_VERSION


def test_stale_binary_falls_back_to_build(tmp_path, tiny_corpus):
    """A binary artifact for a different corpus size is stale: the
    loader probes the next artifact, and failing that, builds."""
    from repro.index.inverted import CliqueInvertedIndex
    from repro.storage.store import save_index

    path = _corpus_on_disk(tmp_path, tiny_corpus)
    built = build_snapshot(path, generation=1)
    stale = CliqueInvertedIndex(
        built.engine.correlations, max_clique_size=built.engine.params.max_clique_size
    ).build(list(tiny_corpus)[: len(tiny_corpus) // 2])
    save_index(stale, path / "index.bin")

    snapshot = build_snapshot(path, generation=2)
    assert snapshot.index_provenance.origin == "built"
    assert snapshot.engine.index.n_objects == len(tiny_corpus)


def test_no_index_no_provenance(tmp_path, tiny_corpus):
    snapshot = build_snapshot(
        _corpus_on_disk(tmp_path, tiny_corpus), generation=1, build_index=False
    )
    assert snapshot.index_provenance is None
    assert snapshot.engine.index is None


def test_payload_verification_choice_recorded(tmp_path, tiny_corpus):
    """``verify_payload=False`` is the ``--no-verify-payload`` fast
    open: the binary artifact is still picked up (structural checks
    run), and the provenance records the skipped sweep."""
    from repro.storage.store import save_index

    path = _corpus_on_disk(tmp_path, tiny_corpus)
    built = build_snapshot(path, generation=1)
    save_index(built.engine.index, path / "index.bin")

    fast = build_snapshot(path, generation=2, verify_payload=False)
    assert fast.index_provenance.origin == "loaded"
    assert fast.index_provenance.payload_verified is False

    checked = build_snapshot(path, generation=3)
    assert checked.index_provenance.payload_verified is True
    # both snapshots answer identically — the flag only skips checksums
    query = fast.corpus[0]
    assert fast.engine.search(query, k=5) == checked.engine.search(query, k=5)


def test_manager_forwards_verify_payload(tmp_path, tiny_corpus):
    from repro.storage.store import save_index

    path = _corpus_on_disk(tmp_path, tiny_corpus)
    built = build_snapshot(path, generation=1)
    save_index(built.engine.index, path / "index.bin")
    manager = SnapshotManager(path, verify_payload=False)
    snapshot = manager.load()
    assert snapshot.index_provenance.payload_verified is False


# ----------------------------------------------------------------------
# leases and deterministic disposal (the reload fd-leak fix)
# ----------------------------------------------------------------------
def _binary_corpus_dir(tmp_path, tiny_corpus):
    """Corpus dir with a v3 artifact, so snapshots hold a real fd+mmap."""
    from repro.storage.store import save_index

    path = _corpus_on_disk(tmp_path, tiny_corpus)
    built = build_snapshot(path, generation=1)
    save_index(built.engine.index, path / "index.bin")
    return path


def test_lease_before_load_raises(rec_corpus_dir):
    with pytest.raises(RuntimeError):
        SnapshotManager(rec_corpus_dir).lease()


def test_reload_closes_unleased_previous_snapshot(tmp_path, tiny_corpus):
    manager = SnapshotManager(_binary_corpus_dir(tmp_path, tiny_corpus))
    first = manager.load()
    assert first.engine.index.closed is False
    second = manager.reload()
    # no lease was open: the retired mapping is closed on the swap
    assert first.engine.index.closed is True
    assert second.engine.index.closed is False


def test_open_lease_defers_disposal_until_release(tmp_path, tiny_corpus):
    manager = SnapshotManager(_binary_corpus_dir(tmp_path, tiny_corpus))
    first = manager.load()
    lease = manager.lease()
    assert manager.leases(first.generation) == 1
    manager.reload()
    # the in-flight request still reads generation 1: not closed yet
    assert lease.snapshot is first
    assert first.engine.index.closed is False
    lease.release()
    assert first.engine.index.closed is True
    assert manager.leases(first.generation) == 0
    # release is idempotent — a double release must not double-close
    lease.release()


def test_lease_context_manager_releases(tmp_path, tiny_corpus):
    manager = SnapshotManager(_binary_corpus_dir(tmp_path, tiny_corpus))
    first = manager.load()
    with manager.lease() as snapshot:
        assert snapshot is first
        manager.reload()
        assert first.engine.index.closed is False
    assert first.engine.index.closed is True


def test_current_snapshot_never_closed_by_release(tmp_path, tiny_corpus):
    manager = SnapshotManager(_binary_corpus_dir(tmp_path, tiny_corpus))
    current = manager.load()
    with manager.lease():
        pass
    assert current.engine.index.closed is False


def test_reload_churn_does_not_leak_fds(tmp_path, tiny_corpus):
    """Regression for the reload fd/mmap leak: before refcounted
    disposal, every reload left the old artifact's fd open until GC."""
    import os

    if not os.path.isdir("/proc/self/fd"):
        pytest.skip("requires /proc fd introspection")
    manager = SnapshotManager(_binary_corpus_dir(tmp_path, tiny_corpus))
    manager.load()
    baseline = len(os.listdir("/proc/self/fd"))
    for _ in range(8):
        manager.reload()
    assert len(os.listdir("/proc/self/fd")) <= baseline
