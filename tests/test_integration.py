"""End-to-end integration: the pipelines of Figure 3 and Section 4 on a
small synthetic corpus, checking cross-module behaviour rather than
statistics (statistical shape checks live in benchmarks/)."""

import pytest

from repro.core.mrf import MRFParameters
from repro.core.objects import FeatureType
from repro.core.recommendation import Recommender
from repro.core.retrieval import RetrievalEngine
from repro.eval.oracle import FavoriteOracle, TopicOracle
from repro.eval.protocol import evaluate_recommendation, evaluate_retrieval, sample_queries
from repro.social.temporal import TemporalSplit


def test_full_retrieval_pipeline_above_chance(engine, tiny_corpus):
    oracle = TopicOracle(tiny_corpus)
    queries = sample_queries(tiny_corpus, n_queries=8, seed=5)
    report = evaluate_retrieval(engine, queries, oracle, cutoffs=(5,))
    # ~2/6 dominant topics per object -> chance well below 0.45
    assert report[5] > 0.45


def test_fusion_beats_worst_single_modality(engine, tiny_corpus):
    """Fig. 5's headline at test scale: full FIG >= the weakest single
    modality by a clear margin."""
    oracle = TopicOracle(tiny_corpus)
    queries = sample_queries(tiny_corpus, n_queries=8, seed=5)
    full = evaluate_retrieval(engine, queries, oracle, cutoffs=(5,))[5]
    singles = []
    for ftype in FeatureType:
        restricted = tiny_corpus.restricted_to_types([ftype])
        single_engine = RetrievalEngine(restricted, build_index=False)
        restricted_queries = [restricted.get(q.object_id) for q in queries]
        singles.append(
            evaluate_retrieval(
                _ScanOnly(single_engine), restricted_queries, oracle, cutoffs=(5,)
            )[5]
        )
    assert full >= min(singles)


class _ScanOnly:
    """Adapter forcing scan mode (index-free engines)."""

    def __init__(self, engine):
        self._engine = engine

    def search(self, query, k=10):
        return self._engine.search(query, k=k, mode="scan")


def test_full_recommendation_pipeline_above_chance(recommender, rec_corpus):
    split = recommender.split
    oracle = FavoriteOracle(rec_corpus, split.evaluation)
    users = oracle.users()
    report = evaluate_recommendation(recommender, users, oracle, cutoffs=(5,))
    n_candidates = len(recommender.candidates)
    chance = sum(oracle.n_relevant(u) for u in users) / len(users) / n_candidates
    assert report[5] > 2 * chance


def test_temporal_recommender_runs_all_deltas(recommender, rec_corpus):
    user = rec_corpus.favorite_users()[0]
    for delta in (1.0, 0.6, 0.2):
        hits = recommender.with_params(MRFParameters(delta=delta)).recommend(user, k=5)
        assert len(hits) == 5


def test_engine_and_recommender_share_corpus_semantics(rec_corpus):
    """The same corpus drives both applications (Figure 3 + Section 4)."""
    engine = RetrievalEngine(rec_corpus.subset(60))
    hits = engine.search(rec_corpus[0], k=3)
    assert len(hits) == 3
    rec = Recommender(
        rec_corpus, split=TemporalSplit.paper_default(rec_corpus.n_months), build_index=False
    )
    user = rec_corpus.favorite_users()[0]
    assert rec.recommend(user, k=3, mode="scan")


def test_storage_roundtrip_preserves_rankings(tmp_path, tiny_corpus):
    """Saving and reloading a corpus must not change retrieval output."""
    from repro.storage.store import load_corpus, save_corpus

    loaded = load_corpus(save_corpus(tiny_corpus, tmp_path / "c"))
    e1 = RetrievalEngine(tiny_corpus)
    e2 = RetrievalEngine(loaded)
    q1, q2 = tiny_corpus[0], loaded[0]
    r1 = [(h.object_id, round(h.score, 9)) for h in e1.search(q1, k=5)]
    r2 = [(h.object_id, round(h.score, 9)) for h in e2.search(q2, k=5)]
    assert r1 == r2
