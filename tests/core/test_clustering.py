"""k-medoids clustering over MRF similarity."""

import numpy as np
import pytest

from repro.core.clustering import ClusteringResult, cluster_purity, k_medoids, pairwise_similarity


# ----------------------------------------------------------------------
# k_medoids on hand-built matrices
# ----------------------------------------------------------------------
def _block_similarity(sizes, within=1.0, across=0.1):
    n = sum(sizes)
    m = np.full((n, n), across)
    offset = 0
    for size in sizes:
        m[offset : offset + size, offset : offset + size] = within
        offset += size
    return m


def test_recovers_block_structure():
    sim = _block_similarity([4, 4, 4])
    result = k_medoids(sim, k=3, rng=np.random.default_rng(0))
    truth = [0] * 4 + [1] * 4 + [2] * 4
    assert cluster_purity(result.labels, truth) == 1.0


def test_k_one_single_cluster():
    sim = _block_similarity([6])
    result = k_medoids(sim, k=1, rng=np.random.default_rng(0))
    assert set(result.labels) == {0}
    assert len(result.medoids) == 1


def test_total_similarity_reported():
    sim = _block_similarity([3, 3])
    result = k_medoids(sim, k=2, rng=np.random.default_rng(1))
    assert result.total_similarity == pytest.approx(6.0)  # each member sim-1 to its medoid


def test_invalid_inputs():
    sim = _block_similarity([4])
    with pytest.raises(ValueError):
        k_medoids(sim, k=0, rng=np.random.default_rng(0))
    with pytest.raises(ValueError):
        k_medoids(sim, k=5, rng=np.random.default_rng(0))
    with pytest.raises(ValueError):
        k_medoids(np.zeros((2, 3)), k=1, rng=np.random.default_rng(0))


def test_deterministic_given_rng():
    sim = _block_similarity([5, 5])
    a = k_medoids(sim, k=2, rng=np.random.default_rng(3))
    b = k_medoids(sim, k=2, rng=np.random.default_rng(3))
    assert a == b
    assert isinstance(a, ClusteringResult)


def test_purity_validation():
    with pytest.raises(ValueError):
        cluster_purity([], [])
    with pytest.raises(ValueError):
        cluster_purity([0], [0, 1])


def test_purity_partial():
    # cluster 0: classes {a, a, b} -> 2 correct; cluster 1: {b} -> 1
    assert cluster_purity([0, 0, 0, 1], [0, 0, 1, 1]) == pytest.approx(0.75)


# ----------------------------------------------------------------------
# end to end over MRF similarity
# ----------------------------------------------------------------------
def test_pairwise_similarity_matrix(tiny_corpus, correlations):
    objects = list(tiny_corpus)[:12]
    matrix = pairwise_similarity(objects, correlations)
    assert matrix.shape == (12, 12)
    np.testing.assert_allclose(matrix, matrix.T)
    assert (matrix >= 0).all()


def test_clustering_groups_topics(tiny_corpus, correlations):
    """Same-topic objects should co-cluster far above chance."""
    by_topic = {}
    for obj in tiny_corpus:
        by_topic.setdefault(tiny_corpus.topics(obj.object_id)[0], []).append(obj)
    picked_topics = sorted(t for t, objs in by_topic.items() if len(objs) >= 6)[:3]
    objects, truth = [], []
    for t in picked_topics:
        objects.extend(by_topic[t][:6])
        truth.extend([t] * 6)
    matrix = pairwise_similarity(objects, correlations)
    result = k_medoids(matrix, k=len(picked_topics), rng=np.random.default_rng(5))
    assert cluster_purity(result.labels, truth) > 0.6
