"""Property-style ranking parity across every query path.

The impact-ordering change rebuilt ``mode="index"`` on postings scored
at build time; these tests pin the contract that made that safe: every
path ranks with ``ranked_sort`` semantics and agrees **bit-identically**
(ids AND float scores, ties broken by ascending id) with its reference:

* ``mode="index"`` == ``mode="index-rescore"`` (the pre-change path) at
  every α/λ mix — λ and CorS multiply outside the stored components,
  and α only re-mixes them;
* ``mode="scan"`` == ``ParallelScanner`` with ``n_workers > 1``;
* at α=1 the scan's smoothing-only contributions vanish exactly, so
  all four paths coincide;
* all of the above survive an index persistence round trip.

The corpus carries an exact feature-duplicate ("twin") object so score
ties are guaranteed, not incidental.
"""

from __future__ import annotations

import dataclasses

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.mrf import MRFParameters
from repro.core.parallel import ParallelScanner
from repro.core.retrieval import RetrievalEngine
from repro.social.corpus import Corpus
from repro.storage.store import load_index, save_index

#: α values swept by the property tests (the trainer's grid shape).
ALPHAS = (0.0, 0.3, 0.7, 1.0)
N_QUERIES = 12


@pytest.fixture(scope="module")
def tie_corpus(tiny_corpus):
    """The tiny corpus plus an exact duplicate of object 0 under an id
    sorting last — every query matching object 0 produces a hard tie."""
    objects = list(tiny_corpus)
    twin = dataclasses.replace(objects[0], object_id="zzz-twin")
    return Corpus(
        [*objects, twin],
        social=tiny_corpus.social,
        taxonomy=tiny_corpus.taxonomy,
        codebook=tiny_corpus.codebook,
        n_months=tiny_corpus.n_months,
    )


@pytest.fixture(scope="module")
def base_engine(tie_corpus):
    return RetrievalEngine(tie_corpus, params=MRFParameters())


@pytest.fixture(scope="module")
def engines(base_engine):
    """One engine per α, all sharing the single built index — the
    ``with_params`` sweep the impact ordering had to keep valid."""
    return {
        alpha: base_engine.with_params(MRFParameters(alpha=alpha)) for alpha in ALPHAS
    }


def _pairs(results):
    return [(r.object_id, r.score) for r in results]


@settings(deadline=None, max_examples=30)
@given(q=st.integers(0, N_QUERIES - 1), alpha=st.sampled_from(ALPHAS))
def test_index_matches_prechange_rescore_bitwise(engines, tie_corpus, q, alpha):
    engine = engines[alpha]
    query = tie_corpus[q]
    fast = engine.search(query, k=10, mode="index")
    assert _pairs(fast) == _pairs(engine.search(query, k=10, mode="index-rescore"))


def test_scan_matches_parallel_scanner_bitwise(base_engine, tie_corpus):
    scanner = ParallelScanner(base_engine, n_workers=2)
    for q in range(4):
        query = tie_corpus[q]
        assert _pairs(scanner.search(query, k=10)) == _pairs(
            base_engine.search(query, k=10, mode="scan")
        )


def test_alpha1_all_four_paths_coincide(engines, tie_corpus):
    engine = engines[1.0]
    scanner = ParallelScanner(engine, n_workers=2)
    for q in range(6):
        query = tie_corpus[q]
        fast = _pairs(engine.search(query, k=10, mode="index"))
        assert fast == _pairs(engine.search(query, k=10, mode="index-rescore"))
        assert fast == _pairs(engine.search(query, k=10, mode="scan"))
        assert fast == _pairs(scanner.search(query, k=10))


def test_twin_tie_broken_by_ascending_id(engines, tie_corpus):
    """Query object 0 without excluding it: the query and its twin tie
    bit-exactly and must order by ascending id in every path."""
    query = tie_corpus[0]
    for alpha in ALPHAS:
        engine = engines[alpha]
        for mode in ("index", "index-rescore"):
            top = engine.search(query, k=5, exclude_query=False, mode=mode)
            assert [r.object_id for r in top[:2]] == [query.object_id, "zzz-twin"]
            assert top[0].score == top[1].score, (alpha, mode)
    scan_top = engines[1.0].search(query, k=5, exclude_query=False, mode="scan")
    assert [r.object_id for r in scan_top[:2]] == [query.object_id, "zzz-twin"]
    assert scan_top[0].score == scan_top[1].score


@pytest.mark.parametrize("format", ["jsonl", "binary"])
def test_parity_survives_persistence_round_trip(base_engine, tie_corpus, tmp_path, format):
    path = tmp_path / ("index.jsonl" if format == "jsonl" else "index.bin")
    save_index(base_engine.index, path, format=format)
    reloaded = RetrievalEngine(tie_corpus, params=MRFParameters(), build_index=False)
    reloaded.adopt_index(load_index(path, reloaded.correlations))
    for q in range(N_QUERIES):
        query = tie_corpus[q]
        before = _pairs(base_engine.search(query, k=10, mode="index"))
        assert before == _pairs(reloaded.search(query, k=10, mode="index"))
        assert before == _pairs(reloaded.search(query, k=10, mode="index-rescore"))
    # parameter sweeps over the loaded index stay bit-identical too
    swept = reloaded.with_params(MRFParameters(alpha=1.0))
    ref = base_engine.with_params(MRFParameters(alpha=1.0))
    query = tie_corpus[1]
    assert _pairs(swept.search(query, k=10, mode="index")) == _pairs(
        ref.search(query, k=10, mode="scan")
    )


def test_search_with_stats_matches_search_and_terminates_early(base_engine, tie_corpus):
    query = tie_corpus[2]
    results, stats = base_engine.search_with_stats(query, k=5)
    assert _pairs(results) == _pairs(base_engine.search(query, k=5, mode="index"))
    assert stats.sorted_accesses < stats.total_posting_entries
    assert stats.rounds >= 1 and stats.n_sources >= 1
