"""Recommender: profiles, temporal weighting, Definition 2 mechanics."""

import pytest

from repro.core.mrf import MRFParameters
from repro.core.recommendation import Recommender
from repro.social.temporal import MonthWindow, TemporalSplit


def test_candidates_are_eval_window_objects(recommender, rec_corpus):
    split = recommender.split
    for obj in recommender.candidates:
        assert obj.timestamp in split.evaluation


def test_profile_built_from_profile_window(recommender, rec_corpus):
    user = rec_corpus.favorite_users()[0]
    profile = recommender.profile_for(user)
    assert profile.user == user
    assert len(profile) > 0
    for obj in profile.history:
        assert obj.timestamp in recommender.split.profile


def test_profile_cached(recommender, rec_corpus):
    user = rec_corpus.favorite_users()[0]
    assert recommender.profile_for(user) is recommender.profile_for(user)


def test_profile_unknown_user_raises(recommender):
    with pytest.raises(ValueError):
        recommender.profile_for("nobody")


def test_profile_occurrences_cover_cliques(recommender, rec_corpus):
    user = rec_corpus.favorite_users()[0]
    profile = recommender.profile_for(user)
    for clique in profile.cliques:
        stamps = profile.occurrences[clique.features]
        assert stamps
        assert all(ts in recommender.split.profile for ts in stamps)


def test_temporal_weight_counts_occurrences(recommender, rec_corpus):
    user = rec_corpus.favorite_users()[0]
    profile = recommender.profile_for(user)
    clique = profile.cliques[0]
    n_occurrences = len(profile.occurrences[clique.features])
    # delta=1: weight is exactly the appearance count
    assert profile.temporal_weight(clique, t_now=3, delta=1.0) == n_occurrences


def test_temporal_weight_decays(recommender, rec_corpus):
    user = rec_corpus.favorite_users()[0]
    profile = recommender.profile_for(user)
    clique = profile.cliques[0]
    full = profile.temporal_weight(clique, t_now=3, delta=1.0)
    decayed = profile.temporal_weight(clique, t_now=3, delta=0.5)
    assert 0 < decayed < full


def test_recommend_returns_candidates_only(recommender, rec_corpus):
    user = rec_corpus.favorite_users()[0]
    hits = recommender.recommend(user, k=10)
    candidate_ids = {o.object_id for o in recommender.candidates}
    assert hits
    assert all(h.object_id in candidate_ids for h in hits)


def test_recommend_sorted_descending(recommender, rec_corpus):
    user = rec_corpus.favorite_users()[1]
    hits = recommender.recommend(user, k=10)
    scores = [h.score for h in hits]
    assert scores == sorted(scores, reverse=True)


def test_recommend_scan_mode_agrees_substantially(recommender, rec_corpus):
    user = rec_corpus.favorite_users()[0]
    idx = {h.object_id for h in recommender.recommend(user, k=10)}
    scan = {h.object_id for h in recommender.recommend(user, k=10, mode="scan")}
    assert len(idx & scan) >= 5


def test_invalid_mode_rejected(recommender, rec_corpus):
    with pytest.raises(ValueError):
        recommender.recommend(rec_corpus.favorite_users()[0], k=3, mode="warp")


def test_scan_only_recommender(rec_corpus):
    rec = Recommender(rec_corpus, build_index=False)
    user = rec_corpus.favorite_users()[0]
    with pytest.raises(ValueError):
        rec.recommend(user, k=3, mode="index")
    assert rec.recommend(user, k=3, mode="scan")


def test_with_params_shares_structures(recommender):
    clone = recommender.with_params(MRFParameters(delta=0.5))
    assert clone.candidates is recommender.candidates
    assert clone.params.delta == 0.5


def test_with_params_rejects_larger_cliques(recommender):
    with pytest.raises(ValueError):
        recommender.with_params(MRFParameters(lambdas={4: 1.0}))


def test_delta_changes_ranking_weights(recommender, rec_corpus):
    """δ=1 vs strong decay generally produce different rankings for a
    user with a multi-month history (at minimum, valid output)."""
    user = rec_corpus.favorite_users()[0]
    no_decay = recommender.recommend(user, k=10)
    strong = recommender.with_params(MRFParameters(delta=0.1)).recommend(user, k=10)
    assert no_decay and strong


def test_custom_split():
    pass  # covered below with a concrete corpus


def test_custom_split_changes_candidates(rec_corpus):
    split = TemporalSplit(MonthWindow(0, 2), MonthWindow(2, 6))
    rec = Recommender(rec_corpus, split=split, build_index=False)
    assert all(o.timestamp in split.evaluation for o in rec.candidates)


def test_current_month_override(recommender, rec_corpus):
    user = rec_corpus.favorite_users()[0]
    hits = recommender.with_params(MRFParameters(delta=0.5)).recommend(
        user, k=5, current_month=5
    )
    assert len(hits) == 5


def test_recommend_vectorized_bitwise_parity(recommender, rec_corpus):
    """``index-vectorized`` (and the ``auto`` default) return the same
    ids and float scores as the scalar index path."""
    for user in rec_corpus.favorite_users()[:3]:
        scalar = recommender.recommend(user, k=10, mode="index")
        fast = recommender.recommend(user, k=10, mode="index-vectorized")
        assert [(h.object_id, h.score) for h in fast] == [
            (h.object_id, h.score) for h in scalar
        ]
        assert recommender.recommend(user, k=10) == fast  # auto default


def test_recommend_vectorized_parity_under_decay(rec_corpus):
    """Temporal decay scales whole sources (the ``outer`` factor); the
    vectorized path must apply it identically."""
    rec = Recommender(rec_corpus, params=MRFParameters(delta=0.5))
    user = rec_corpus.favorite_users()[0]
    assert rec.recommend(user, k=10, mode="index-vectorized") == rec.recommend(
        user, k=10, mode="index"
    )
