"""Clique model and enumeration (vs brute force)."""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.cliques import Clique, enumerate_cliques
from repro.core.objects import Feature

T = Feature.text
U = Feature.user


# ----------------------------------------------------------------------
# Clique dataclass
# ----------------------------------------------------------------------
def test_clique_sorts_features():
    c = Clique(features=(T("b"), T("a")))
    assert c.features == (T("a"), T("b"))


def test_clique_equality_order_independent():
    assert Clique((T("a"), U("u"))) == Clique((U("u"), T("a")))
    assert hash(Clique((T("a"), U("u")))) == hash(Clique((U("u"), T("a"))))


def test_clique_size_excludes_root():
    assert Clique((T("a"), T("b"))).size == 2  # |c| - 1 in paper notation


def test_clique_key_roundtrip():
    c = Clique((T("sunset"), U("u1")), timestamp=3)
    back = Clique.from_key(c.key, timestamp=3)
    assert back == c and back.timestamp == 3


def test_clique_key_deterministic():
    assert Clique((U("u"), T("a"))).key == "T:a|U:u"


def test_empty_clique_rejected():
    with pytest.raises(ValueError):
        Clique(features=())


def test_with_timestamp():
    c = Clique((T("a"),))
    assert c.timestamp is None
    assert c.with_timestamp(5).timestamp == 5


def test_clique_iter_len():
    c = Clique((T("a"), T("b")))
    assert list(c) == [T("a"), T("b")]
    assert len(c) == 2


# ----------------------------------------------------------------------
# enumeration
# ----------------------------------------------------------------------
def _features(n):
    return [T(f"f{i}") for i in range(n)]


def _adjacency(nodes, edges):
    adj = {n: set() for n in nodes}
    for a, b in edges:
        adj[a].add(b)
        adj[b].add(a)
    return {n: frozenset(s) for n, s in adj.items()}


def test_isolated_nodes_give_singletons():
    nodes = _features(3)
    result = enumerate_cliques(nodes, _adjacency(nodes, []), max_size=3)
    assert sorted(result) == sorted((n,) for n in nodes)


def test_triangle_gives_all_subsets():
    nodes = _features(3)
    edges = list(itertools.combinations(nodes, 2))
    result = enumerate_cliques(nodes, _adjacency(nodes, edges), max_size=3)
    assert len(result) == 3 + 3 + 1  # singletons + pairs + triangle


def test_path_graph_has_no_triangle():
    a, b, c = _features(3)
    result = enumerate_cliques([a, b, c], _adjacency([a, b, c], [(a, b), (b, c)]), max_size=3)
    assert (a, b, c) not in result
    assert (a, b) in result and (b, c) in result
    assert (a, c) not in result


def test_max_size_caps_enumeration():
    nodes = _features(4)
    edges = list(itertools.combinations(nodes, 2))  # K4
    result = enumerate_cliques(nodes, _adjacency(nodes, edges), max_size=2)
    assert all(len(c) <= 2 for c in result)
    assert len(result) == 4 + 6


def test_max_size_one_gives_nodes_only():
    nodes = _features(5)
    edges = [(nodes[0], nodes[1])]
    result = enumerate_cliques(nodes, _adjacency(nodes, edges), max_size=1)
    assert sorted(result) == sorted((n,) for n in nodes)


def test_invalid_max_size():
    with pytest.raises(ValueError):
        enumerate_cliques([], {}, max_size=0)


def test_no_duplicates():
    nodes = _features(5)
    edges = list(itertools.combinations(nodes, 2))
    result = enumerate_cliques(nodes, _adjacency(nodes, edges), max_size=3)
    assert len(result) == len(set(result))


def _brute_force(nodes, adjacency, max_size):
    out = []
    for size in range(1, max_size + 1):
        for combo in itertools.combinations(nodes, size):
            if all(
                b in adjacency.get(a, frozenset())
                for a, b in itertools.combinations(combo, 2)
            ):
                out.append(tuple(sorted(combo)))
    return sorted(out)


@settings(deadline=None, max_examples=60)
@given(st.data())
def test_enumeration_matches_brute_force(data):
    n = data.draw(st.integers(1, 8))
    nodes = _features(n)
    possible = list(itertools.combinations(range(n), 2))
    chosen = data.draw(st.lists(st.sampled_from(possible), unique=True, max_size=len(possible))) if possible else []
    edges = [(nodes[i], nodes[j]) for i, j in chosen]
    adjacency = _adjacency(nodes, edges)
    max_size = data.draw(st.integers(1, 4))
    result = sorted(tuple(sorted(c)) for c in enumerate_cliques(nodes, adjacency, max_size))
    assert result == _brute_force(nodes, adjacency, max_size)
