"""kNN classification over FIG similarity."""

import pytest

from repro.core.classification import KNNClassifier, Prediction, classification_accuracy


@pytest.fixture(scope="module")
def labels(tiny_corpus):
    return {
        obj.object_id: str(tiny_corpus.topics(obj.object_id)[0]) for obj in tiny_corpus
    }


@pytest.fixture(scope="module")
def classifier(engine, labels):
    return KNNClassifier(engine, labels, k=5)


def test_predicts_dominant_topic_above_chance(classifier, tiny_corpus, labels):
    objects = list(tiny_corpus)[:30]
    accuracy = classification_accuracy(
        classifier, objects, true_label=lambda oid: labels[oid]
    )
    assert accuracy > 0.5  # chance is ~1/6 topics


def test_prediction_structure(classifier, tiny_corpus):
    prediction = classifier.predict(tiny_corpus[0])
    assert prediction is not None
    assert prediction.label in prediction.votes
    assert 0.0 < prediction.confidence <= 1.0
    assert prediction.votes[prediction.label] == max(prediction.votes.values())


def test_votes_are_similarity_weighted(classifier, tiny_corpus):
    prediction = classifier.predict(tiny_corpus[1])
    assert all(v > 0 for v in prediction.votes.values())


def test_partial_labelling_skips_unlabelled(engine, tiny_corpus, labels):
    partial = dict(list(labels.items())[: len(labels) // 2])
    classifier = KNNClassifier(engine, partial, k=3)
    # still answers for most objects (neighbourhood over-fetch)
    answered = sum(
        1 for obj in list(tiny_corpus)[:10] if classifier.predict(obj) is not None
    )
    assert answered >= 8


def test_predict_many_aligns(classifier, tiny_corpus):
    objects = list(tiny_corpus)[:4]
    predictions = classifier.predict_many(objects)
    assert len(predictions) == 4


def test_validation(engine, labels):
    with pytest.raises(ValueError):
        KNNClassifier(engine, labels, k=0)
    with pytest.raises(ValueError):
        KNNClassifier(engine, {}, k=3)


def test_accuracy_requires_objects(classifier):
    with pytest.raises(ValueError):
        classification_accuracy(classifier, [], true_label=lambda oid: "x")


def test_deterministic_tie_breaking():
    prediction = Prediction(label="a", votes={"a": 1.0, "b": 1.0})
    # construction is free-form; the classifier's own tie-break is by
    # sorted label order, which test_predicts... exercises implicitly
    assert prediction.confidence == 0.5
