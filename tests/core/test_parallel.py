"""Parallel exact scan: equivalence with the serial scan."""

import pytest

from repro.core.parallel import ParallelScanner


def _rounded(results):
    return [(r.object_id, round(r.score, 9)) for r in results]


def test_single_worker_matches_scan_mode(engine, tiny_corpus):
    scanner = ParallelScanner(engine, n_workers=1)
    query = tiny_corpus[0]
    assert _rounded(scanner.search(query, k=8)) == _rounded(
        engine.search(query, k=8, mode="scan")
    )


def test_two_workers_match_scan_mode(engine, tiny_corpus):
    scanner = ParallelScanner(engine, n_workers=2)
    query = tiny_corpus[3]
    assert _rounded(scanner.search(query, k=8)) == _rounded(
        engine.search(query, k=8, mode="scan")
    )


def test_exclude_query(engine, tiny_corpus):
    scanner = ParallelScanner(engine, n_workers=1)
    query = tiny_corpus[0]
    assert query.object_id not in {r.object_id for r in scanner.search(query, k=20)}
    included = scanner.search(query, k=1, exclude_query=False)
    assert included[0].object_id == query.object_id


def test_small_corpus_runs_inline(engine, tiny_corpus):
    # fewer objects than 2*workers: the pool must be skipped
    scanner = ParallelScanner(engine, n_workers=1000)
    assert scanner.search(tiny_corpus[0], k=3)


def test_invalid_workers(engine):
    with pytest.raises(ValueError):
        ParallelScanner(engine, n_workers=0)


def test_default_workers_positive(engine):
    assert ParallelScanner(engine).n_workers >= 1


def test_split_covers_everything(engine, tiny_corpus):
    shards = ParallelScanner._split(list(tiny_corpus), 3)
    flattened = [o.object_id for shard in shards for o in shard]
    assert flattened == [o.object_id for o in tiny_corpus]
