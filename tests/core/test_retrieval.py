"""Retrieval engine: Algorithm 1 mechanics and end-to-end sanity."""

import pytest

from repro.core.mrf import MRFParameters
from repro.core.retrieval import RankedResult, RetrievalEngine
from repro.eval.oracle import TopicOracle


def test_search_returns_k_results(engine, tiny_corpus):
    hits = engine.search(tiny_corpus[0], k=5)
    assert len(hits) == 5
    assert all(isinstance(h, RankedResult) for h in hits)


def test_results_sorted_descending(engine, tiny_corpus):
    hits = engine.search(tiny_corpus[0], k=10)
    scores = [h.score for h in hits]
    assert scores == sorted(scores, reverse=True)


def test_query_excluded_by_default(engine, tiny_corpus):
    query = tiny_corpus[0]
    hits = engine.search(query, k=20)
    assert query.object_id not in {h.object_id for h in hits}


def test_query_included_when_requested(engine, tiny_corpus):
    query = tiny_corpus[0]
    hits = engine.search(query, k=5, exclude_query=False)
    # the query contains all its own cliques: it must rank first
    assert hits[0].object_id == query.object_id


def test_results_are_corpus_objects(engine, tiny_corpus):
    hits = engine.search(tiny_corpus[3], k=10)
    for h in hits:
        assert h.object_id in tiny_corpus


def test_no_duplicate_results(engine, tiny_corpus):
    hits = engine.search(tiny_corpus[1], k=20)
    ids = [h.object_id for h in hits]
    assert len(ids) == len(set(ids))


def test_scan_mode_matches_index_mode_topically(engine, tiny_corpus):
    """Index mode approximates the scan (it skips smoothing-only
    candidates), but the two top lists must substantially agree."""
    query = tiny_corpus[0]
    idx = {h.object_id for h in engine.search(query, k=10)}
    scan = {h.object_id for h in engine.search(query, k=10, mode="scan")}
    assert len(idx & scan) >= 5


def test_retrieval_finds_same_topic_objects(engine, tiny_corpus):
    """End-to-end planted-signal check: top hits share the query topic
    far above chance."""
    oracle = TopicOracle(tiny_corpus)
    hits_rel = 0
    n = 0
    for query in list(tiny_corpus)[:8]:
        for h in engine.search(query, k=5):
            n += 1
            hits_rel += oracle.relevant(query.object_id, h.object_id)
    # chance level is roughly 2/6 topics; demand well above it
    assert hits_rel / n > 0.5


def test_invalid_mode_rejected(engine, tiny_corpus):
    with pytest.raises(ValueError):
        engine.search(tiny_corpus[0], k=3, mode="turbo")


def test_scan_only_engine_refuses_index_mode(tiny_corpus):
    engine = RetrievalEngine(tiny_corpus, build_index=False)
    assert engine.index is None
    with pytest.raises(ValueError):
        engine.search(tiny_corpus[0], k=3, mode="index")
    hits = engine.search(tiny_corpus[0], k=3, mode="scan")
    assert len(hits) == 3


def test_with_params_shares_index(engine):
    clone = engine.with_params(MRFParameters(alpha=0.9))
    assert clone.index is engine.index
    assert clone.params.alpha == 0.9
    assert engine.params.alpha == 0.5  # original untouched


def test_with_params_rejects_larger_cliques(engine):
    with pytest.raises(ValueError):
        engine.with_params(MRFParameters(lambdas={1: 0.5, 4: 0.5}))


def test_with_params_changes_ranking_inputs(engine, tiny_corpus):
    """Different α weightings may reorder results but always return
    valid rankings (scores finite, sorted)."""
    clone = engine.with_params(MRFParameters(alpha=0.05))
    hits = clone.search(tiny_corpus[0], k=5)
    assert all(h.score >= 0 for h in hits)


def test_query_cliques_nonempty(engine, tiny_corpus):
    cliques = engine.query_cliques(tiny_corpus[0])
    assert cliques
    assert all(c.size <= engine.params.max_clique_size for c in cliques)


def test_foreign_query_object(engine, tiny_corpus):
    """A query that is not in the corpus (e.g. a new upload) works."""
    from repro.core.objects import MediaObject

    donor = tiny_corpus[0]
    query = MediaObject(
        object_id="external-query", features=dict(donor.features), timestamp=0
    )
    hits = engine.search(query, k=5)
    assert len(hits) == 5
    # the donor object shares every feature: it must rank first
    assert hits[0].object_id == donor.object_id


def test_ranked_sort_orders_desc_score_then_id():
    from repro.core.retrieval import ranked_sort

    results = [
        RankedResult(object_id="b", score=1.0),
        RankedResult(object_id="a", score=1.0),
        RankedResult(object_id="z", score=3.0),
        RankedResult(object_id="c", score=2.0),
    ]
    assert [r.object_id for r in ranked_sort(results)] == ["z", "c", "a", "b"]


def test_ranked_result_is_not_orderable():
    """The ascending dataclass ordering was a footgun; it must be gone."""
    with pytest.raises(TypeError):
        RankedResult("a", 1.0) < RankedResult("b", 2.0)  # noqa: B015


def test_auto_mode_resolves_to_vectorized(engine, tiny_corpus):
    """The default mode runs the vectorized path, which is asserted
    bit-identical to the scalar reference."""
    query = tiny_corpus[2]
    default = engine.search(query, k=5)
    assert default == engine.search(query, k=5, mode="index-vectorized")
    assert default == engine.search(query, k=5, mode="index")


def test_query_cliques_cached_per_feature_set(tiny_corpus):
    engine = RetrievalEngine(tiny_corpus)
    query = tiny_corpus[0]
    first = engine.query_cliques(query)
    assert len(engine._clique_cache) == 1
    second = engine.query_cliques(query)
    assert second == first
    assert second is not first  # callers get their own list
    # an id-only twin with the same features hits the same cache entry
    import dataclasses

    twin = dataclasses.replace(query, object_id="cache-twin")
    engine.query_cliques(twin)
    assert len(engine._clique_cache) == 1


def test_with_params_clone_gets_fresh_clique_cache(engine, tiny_corpus):
    engine.query_cliques(tiny_corpus[0])
    clone = engine.with_params(MRFParameters(alpha=0.9))
    assert clone._clique_cache == {}
    assert clone.search(tiny_corpus[0], k=3)  # caches independently
