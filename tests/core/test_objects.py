"""Object model: features, bags, restriction."""

import pytest

from repro.core.objects import ALL_TYPES, Feature, FeatureType, MediaObject


# ----------------------------------------------------------------------
# Feature
# ----------------------------------------------------------------------
def test_feature_key_roundtrip():
    for f in (Feature.text("sunset"), Feature.visual("vw3"), Feature.user("u1")):
        assert Feature.from_key(f.key) == f


def test_feature_key_format():
    assert Feature.text("sunset").key == "T:sunset"
    assert Feature.visual("vw3").key == "V:vw3"
    assert Feature.user("u1").key == "U:u1"


def test_feature_namespacing():
    assert Feature.text("sunset") != Feature.user("sunset")


def test_feature_from_key_rejects_malformed():
    with pytest.raises(ValueError):
        Feature.from_key("sunset")
    with pytest.raises(ValueError):
        Feature.from_key("T:")
    with pytest.raises(ValueError):
        Feature.from_key("X:thing")


def test_feature_ordering_is_stable():
    features = [Feature.user("b"), Feature.text("a"), Feature.visual("c")]
    assert sorted(features) == sorted(features, key=lambda f: (f.ftype.value, f.name))


def test_feature_name_with_colon_roundtrips():
    f = Feature.text("a:b")
    assert Feature.from_key(f.key) == f


# ----------------------------------------------------------------------
# MediaObject
# ----------------------------------------------------------------------
def test_build_accumulates_frequencies():
    obj = MediaObject.build("o", tags=["sun"], visual_words=["vw1", "vw1", "vw2"])
    assert obj.frequency(Feature.visual("vw1")) == 2
    assert obj.frequency(Feature.visual("vw2")) == 1
    assert obj.frequency(Feature.text("sun")) == 1


def test_len_counts_occurrences():
    obj = MediaObject.build("o", tags=["a"], visual_words=["v", "v"], users=["u"])
    assert len(obj) == 4  # |O_i| of Eq. 7


def test_frequency_of_absent_feature_is_zero():
    obj = MediaObject.build("o", tags=["a"])
    assert obj.frequency(Feature.text("b")) == 0


def test_contains_and_iter():
    obj = MediaObject.build("o", tags=["a"], users=["u"])
    assert Feature.text("a") in obj
    assert Feature.text("z") not in obj
    assert set(obj) == {Feature.text("a"), Feature.user("u")}


def test_distinct_features_sorted():
    obj = MediaObject.build("o", tags=["b", "a"], users=["u"])
    feats = obj.distinct_features()
    assert feats == tuple(sorted(feats))


def test_features_of_type():
    obj = MediaObject.build("o", tags=["a"], visual_words=["v"], users=["u"])
    assert obj.features_of_type(FeatureType.TEXT) == (Feature.text("a"),)
    assert obj.features_of_type(FeatureType.VISUAL) == (Feature.visual("v"),)
    assert obj.features_of_type(FeatureType.USER) == (Feature.user("u"),)


def test_restricted_to_keeps_id_timestamp():
    obj = MediaObject.build("o", tags=["a"], users=["u"], timestamp=4)
    r = obj.restricted_to([FeatureType.TEXT])
    assert r.object_id == "o"
    assert r.timestamp == 4
    assert set(r) == {Feature.text("a")}


def test_restricted_to_multiple_types():
    obj = MediaObject.build("o", tags=["a"], visual_words=["v"], users=["u"])
    r = obj.restricted_to([FeatureType.TEXT, FeatureType.USER])
    assert Feature.visual("v") not in r
    assert len(r.distinct_features()) == 2


def test_rejects_nonpositive_counts():
    with pytest.raises(ValueError):
        MediaObject(object_id="o", features={Feature.text("a"): 0})


def test_rejects_non_feature_keys():
    with pytest.raises(TypeError):
        MediaObject(object_id="o", features={"a": 1})


def test_describe_mentions_all_modalities():
    obj = MediaObject.build("o", tags=["a"], visual_words=["v"], users=["u"], timestamp=2)
    text = obj.describe()
    assert "o" in text and "t=2" in text
    for part in ("text", "visual", "user"):
        assert part in text


def test_all_types_constant():
    assert ALL_TYPES == (FeatureType.TEXT, FeatureType.VISUAL, FeatureType.USER)
