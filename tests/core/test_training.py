"""Coordinate-ascent training and threshold sweeps."""

import pytest

from repro.core.mrf import MRFParameters
from repro.core.training import CoordinateAscentTrainer, train_edge_threshold


def test_finds_known_optimum_alpha():
    """Objective peaked at alpha=0.7: the trainer must land there."""

    def objective(params: MRFParameters) -> float:
        return 1.0 - abs(params.alpha - 0.7)

    trainer = CoordinateAscentTrainer(objective, alpha_grid=(0.1, 0.3, 0.5, 0.7, 0.9))
    result = trainer.train()
    assert result.params.alpha == 0.7
    assert result.objective == pytest.approx(1.0)


def test_finds_known_optimum_lambda_profile():
    """Objective rewards all weight on pair cliques."""

    def objective(params: MRFParameters) -> float:
        return params.lambdas.get(2, 0.0)

    result = CoordinateAscentTrainer(objective).train()
    assert result.params.lambdas[2] == pytest.approx(max(result.params.lambdas.values()))
    assert result.params.lambdas[2] > 0.9


def test_lambdas_stay_normalized():
    def objective(params: MRFParameters) -> float:
        return params.lambdas.get(1, 0.0) + 0.5 * params.lambdas.get(3, 0.0)

    result = CoordinateAscentTrainer(objective).train()
    assert sum(result.params.lambdas.values()) == pytest.approx(1.0)


def test_history_records_improvements():
    def objective(params: MRFParameters) -> float:
        return 1.0 - abs(params.alpha - 0.9)

    result = CoordinateAscentTrainer(objective, alpha_grid=(0.5, 0.9)).train()
    assert result.n_steps >= 1
    assert result.history[-1].objective == result.objective
    # objectives along the history are non-decreasing
    objectives = [s.objective for s in result.history]
    assert objectives == sorted(objectives)


def test_stops_when_no_improvement():
    calls = []

    def objective(params: MRFParameters) -> float:
        calls.append(1)
        return 0.5  # flat surface

    CoordinateAscentTrainer(objective, max_rounds=10).train()
    # 1 initial + one pass over coordinates: flat -> stops after round 1
    per_round = 3 * 8 + 5  # lambda grid per size + alpha grid (some skipped)
    assert len(calls) <= 1 + per_round + 1


def test_delta_trained_only_when_grid_given():
    def objective(params: MRFParameters) -> float:
        return 1.0 - abs(params.delta - 0.4)

    untouched = CoordinateAscentTrainer(objective).train()
    assert untouched.params.delta == 1.0  # default, never explored

    trained = CoordinateAscentTrainer(objective, delta_grid=(1.0, 0.6, 0.4)).train()
    assert trained.params.delta == 0.4


def test_initial_params_respected():
    def objective(params: MRFParameters) -> float:
        return 0.0  # flat: initial point survives

    initial = MRFParameters(lambdas={1: 0.5, 2: 0.5}, alpha=0.3)
    result = CoordinateAscentTrainer(objective).train(initial)
    assert result.params.alpha == 0.3
    assert set(result.params.lambdas) == {1, 2}


def test_invalid_max_rounds():
    with pytest.raises(ValueError):
        CoordinateAscentTrainer(lambda p: 0.0, max_rounds=0)


def test_train_edge_threshold_picks_best():
    best, score = train_edge_threshold(lambda t: -abs(t - 0.3), grid=(0.1, 0.3, 0.5))
    assert best == 0.3
    assert score == 0.0


def test_train_edge_threshold_empty_grid():
    with pytest.raises(ValueError):
        train_edge_threshold(lambda t: t, grid=())


def test_end_to_end_training_improves_or_matches(engine, tiny_corpus):
    """Training on the real engine never returns a worse objective than
    the starting point."""
    from repro.eval.oracle import TopicOracle
    from repro.eval.protocol import evaluate_retrieval, sample_queries

    oracle = TopicOracle(tiny_corpus)
    queries = sample_queries(tiny_corpus, n_queries=4, seed=3)

    def objective(params: MRFParameters) -> float:
        system = engine.with_params(params)
        return evaluate_retrieval(system, queries, oracle, cutoffs=(5,))[5]

    baseline = objective(MRFParameters())
    result = CoordinateAscentTrainer(
        objective, lambda_grid=(0.1, 0.85), alpha_grid=(0.3, 0.7), max_rounds=1
    ).train()
    assert result.objective >= baseline
