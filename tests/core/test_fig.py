"""Feature Interaction Graph construction (object and profile forms)."""

import pytest

from repro.core.correlation import CorrelationModel, OccurrenceStats
from repro.core.fig import FeatureInteractionGraph
from repro.core.objects import Feature, MediaObject

T = Feature.text
U = Feature.user


class FixedCorrelations(CorrelationModel):
    """Correlation model whose pairwise values are set explicitly."""

    def __init__(self, pairs, threshold=0.5):
        super().__init__(
            stats=OccurrenceStats([]),
            text_similarity=None,
            default_threshold=threshold,
        )
        self._pairs = {frozenset(p): v for p, v in pairs.items()}

    def _compute_cor(self, a, b):
        return self._pairs.get(frozenset((a, b)), 0.0)


def test_from_object_nodes_are_distinct_features():
    obj = MediaObject.build("o", tags=["a", "b"], users=["u"])
    fig = FeatureInteractionGraph.from_object(obj, FixedCorrelations({}))
    assert set(fig.nodes) == {T("a"), T("b"), U("u")}
    assert fig.source_id == "o"
    assert not fig.is_profile


def test_edges_follow_threshold():
    obj = MediaObject.build("o", tags=["a", "b", "c"])
    cor = FixedCorrelations({(T("a"), T("b")): 0.9, (T("b"), T("c")): 0.4})
    fig = FeatureInteractionGraph.from_object(obj, cor)
    assert fig.has_edge(T("a"), T("b"))
    assert not fig.has_edge(T("b"), T("c"))  # below threshold
    assert fig.n_edges() == 1


def test_neighbours():
    obj = MediaObject.build("o", tags=["a", "b", "c"])
    cor = FixedCorrelations({(T("a"), T("b")): 0.9, (T("a"), T("c")): 0.9})
    fig = FeatureInteractionGraph.from_object(obj, cor)
    assert fig.neighbours(T("a")) == {T("b"), T("c")}
    assert fig.neighbours(T("b")) == {T("a")}
    assert fig.neighbours(T("zzz")) == frozenset()


def test_cliques_of_object_fig():
    obj = MediaObject.build("o", tags=["a", "b"])
    cor = FixedCorrelations({(T("a"), T("b")): 0.9})
    cliques = FeatureInteractionGraph.from_object(obj, cor).cliques(max_size=2)
    keys = {c.key for c in cliques}
    assert keys == {"T:a", "T:b", "T:a|T:b"}
    assert all(c.timestamp is None for c in cliques)


def test_edge_to_unknown_node_rejected():
    with pytest.raises(ValueError):
        FeatureInteractionGraph(nodes=[T("a")], edges=[(T("a"), T("ghost"))])


def test_self_loops_ignored():
    fig = FeatureInteractionGraph(nodes=[T("a")], edges=[(T("a"), T("a"))])
    assert fig.n_edges() == 0


def test_contains_and_len():
    fig = FeatureInteractionGraph(nodes=[T("a"), T("b")], edges=[])
    assert T("a") in fig and T("z") not in fig
    assert len(fig) == 2


# ----------------------------------------------------------------------
# profile FIGs (Section 4)
# ----------------------------------------------------------------------
def _history():
    return [
        MediaObject.build("h1", tags=["a", "b"], timestamp=0),
        MediaObject.build("h2", tags=["b", "c"], timestamp=1),
        MediaObject.build("h3", tags=["a", "b"], timestamp=2),
    ]


def test_profile_edges_only_within_objects():
    # a-c correlated globally, but never co-occur in one history object:
    # the Section 4 constraint must suppress that edge.
    cor = FixedCorrelations(
        {(T("a"), T("b")): 0.9, (T("b"), T("c")): 0.9, (T("a"), T("c")): 0.9}
    )
    fig = FeatureInteractionGraph.from_profile(_history(), cor)
    assert fig.is_profile
    assert fig.has_edge(T("a"), T("b"))
    assert fig.has_edge(T("b"), T("c"))
    assert not fig.has_edge(T("a"), T("c"))


def test_profile_empty_history_rejected():
    with pytest.raises(ValueError):
        FeatureInteractionGraph.from_profile([], FixedCorrelations({}))


def test_profile_clique_occurrences_track_every_appearance():
    cor = FixedCorrelations({(T("a"), T("b")): 0.9})
    fig = FeatureInteractionGraph.from_profile(_history(), cor)
    occ = fig.clique_occurrences(max_size=2)
    assert occ[(T("a"), T("b"))] == (0, 2)   # h1 and h3
    assert occ[(T("b"),)] == (0, 1, 2)       # all three favorites
    assert occ[(T("c"),)] == (1,)


def test_profile_cliques_carry_most_recent_timestamp():
    cor = FixedCorrelations({(T("a"), T("b")): 0.9})
    fig = FeatureInteractionGraph.from_profile(_history(), cor)
    by_key = {c.key: c for c in fig.cliques(max_size=2)}
    assert by_key["T:a|T:b"].timestamp == 2
    assert by_key["T:c"].timestamp == 1


def test_object_fig_has_no_occurrences():
    obj = MediaObject.build("o", tags=["a"])
    fig = FeatureInteractionGraph.from_object(obj, FixedCorrelations({}))
    with pytest.raises(ValueError):
        fig.clique_occurrences()


def test_profile_cross_object_triangle_not_formed():
    """A triangle whose edges come from different favorites must not
    produce a cross-object clique: no single object contains all three."""
    history = [
        MediaObject.build("h1", tags=["a", "b"], timestamp=0),
        MediaObject.build("h2", tags=["b", "c"], timestamp=0),
        MediaObject.build("h3", tags=["a", "c"], timestamp=0),
    ]
    cor = FixedCorrelations(
        {(T("a"), T("b")): 0.9, (T("b"), T("c")): 0.9, (T("a"), T("c")): 0.9}
    )
    fig = FeatureInteractionGraph.from_profile(history, cor)
    occ = fig.clique_occurrences(max_size=3)
    assert (T("a"), T("b"), T("c")) not in occ
    assert (T("a"), T("b")) in occ
