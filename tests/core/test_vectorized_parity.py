"""Property test: vectorized rankings are bit-identical to scalar.

Satellite contract for the block-max vectorized path: at **any**
parameter point (α anywhere in [0, 1], arbitrary non-negative λ per
clique size, any δ) and over **both** index flavours — the in-memory
build and a v3 mmap segment — ``mode="index-vectorized"`` returns the
same ids *and* the same float scores as ``mode="index"``, ties broken
identically.  The corpus carries an exact feature twin of object 0 so
tie-handling is exercised, not left to chance.
"""

from __future__ import annotations

import dataclasses

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.mrf import MRFParameters
from repro.core.retrieval import RetrievalEngine
from repro.social.corpus import Corpus
from repro.storage.store import load_index, save_index

N_QUERIES = 10


@pytest.fixture(scope="module")
def twin_corpus(tiny_corpus):
    objects = list(tiny_corpus)
    twin = dataclasses.replace(objects[0], object_id="zzz-twin")
    return Corpus(
        [*objects, twin],
        social=tiny_corpus.social,
        taxonomy=tiny_corpus.taxonomy,
        codebook=tiny_corpus.codebook,
        n_months=tiny_corpus.n_months,
    )


@pytest.fixture(scope="module")
def memory_engine(twin_corpus):
    """Engine over the freshly built in-memory index."""
    return RetrievalEngine(twin_corpus, params=MRFParameters())


@pytest.fixture(scope="module")
def mmap_engine(memory_engine, twin_corpus, tmp_path_factory):
    """Engine over the same index persisted to a v3 binary segment —
    the zero-copy path with stored block maxima."""
    path = tmp_path_factory.mktemp("parity") / "index.bin"
    save_index(memory_engine.index, path, format="binary")
    engine = RetrievalEngine(twin_corpus, params=MRFParameters(), build_index=False)
    engine.adopt_index(load_index(path, engine.correlations))
    return engine


def _pairs(results):
    return [(r.object_id, r.score) for r in results]


params_strategy = st.builds(
    MRFParameters,
    alpha=st.floats(0.0, 1.0, allow_nan=False),
    lambdas=st.fixed_dictionaries(
        {1: st.floats(0.05, 1.0)},
        optional={2: st.floats(0.0, 1.0)},
    ),
    delta=st.floats(0.05, 1.0, exclude_min=False),
)


@settings(deadline=None, max_examples=40)
@given(
    q=st.integers(0, N_QUERIES - 1),
    params=params_strategy,
    exclude_query=st.booleans(),
)
def test_vectorized_bitwise_parity_both_flavours(
    memory_engine, mmap_engine, twin_corpus, q, params, exclude_query
):
    query = twin_corpus[q]
    for base in (memory_engine, mmap_engine):
        engine = base.with_params(params)
        scalar = _pairs(
            engine.search(query, k=10, mode="index", exclude_query=exclude_query)
        )
        fast = _pairs(
            engine.search(
                query, k=10, mode="index-vectorized", exclude_query=exclude_query
            )
        )
        assert fast == scalar


def test_twin_tie_ordering_vectorized(memory_engine, mmap_engine, twin_corpus):
    """Querying object 0 without exclusion forces an exact score tie
    with its twin; the vectorized path must break it by ascending id
    on both flavours."""
    query = twin_corpus[0]
    for engine in (memory_engine, mmap_engine):
        top = engine.search(query, k=5, exclude_query=False, mode="index-vectorized")
        assert [r.object_id for r in top[:2]] == [query.object_id, "zzz-twin"]
        assert top[0].score == top[1].score


def test_vectorized_stats_match_and_count_blocks(memory_engine, twin_corpus):
    query = twin_corpus[3]
    results, stats = memory_engine.search_with_stats(
        query, k=5, mode="index-vectorized"
    )
    assert _pairs(results) == _pairs(memory_engine.search(query, k=5, mode="index"))
    assert stats.blocks_total >= stats.blocks_skipped >= 0
    scalar_stats = memory_engine.search_with_stats(query, k=5, mode="index")[1]
    assert scalar_stats.blocks_total == 0  # the scalar path has no blocks
