"""Model-level invariants of the MRF similarity (property tests)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.cliques import Clique
from repro.core.correlation import CorrelationModel, OccurrenceStats
from repro.core.mrf import CliqueScorer, MRFParameters
from repro.core.objects import Feature, MediaObject

T = Feature.text


class UnitCorrelations(CorrelationModel):
    """All pairs correlate 0.5, all cliques CorS 1 — isolates the
    potential's structural behaviour from corpus statistics."""

    def __init__(self):
        super().__init__(stats=OccurrenceStats([]))

    def _compute_cor(self, a, b):
        return 0.5

    def cors(self, features):
        return 1.0


@st.composite
def bags(draw):
    n = draw(st.integers(1, 6))
    names = [f"t{i}" for i in range(n)]
    counts = draw(st.lists(st.integers(1, 4), min_size=n, max_size=n))
    return {T(name): c for name, c in zip(names, counts)}


@settings(deadline=None, max_examples=50)
@given(bag=bags(), alpha=st.floats(0.0, 1.0))
def test_potential_nonnegative_and_bounded(bag, alpha):
    """0 <= P(c|O) <= 1 for any object and clique under bounded Cor."""
    scorer = CliqueScorer(UnitCorrelations(), MRFParameters(alpha=alpha))
    obj = MediaObject(object_id="o", features=bag)
    clique = Clique((next(iter(bag)),))
    p = scorer.joint_probability(clique, obj)
    assert 0.0 <= p <= 1.0 + 1e-9


@settings(deadline=None, max_examples=50)
@given(extra=st.integers(1, 5))
def test_score_monotone_in_matching_frequency_at_alpha_one(extra):
    """With α=1 (pure frequency), raising a matching feature's share of
    the object raises the singleton clique's probability."""
    scorer = CliqueScorer(UnitCorrelations(), MRFParameters(alpha=1.0))
    clique = Clique((T("hit"),))
    low = MediaObject.build("low", tags=["hit"] + ["miss"] * 5)
    high = MediaObject.build("high", tags=["hit"] * (1 + extra) + ["miss"] * 5)
    assert scorer.joint_probability(clique, high) > scorer.joint_probability(clique, low)


def test_score_additive_over_cliques():
    scorer = CliqueScorer(UnitCorrelations(), MRFParameters(alpha=1.0))
    obj = MediaObject.build("o", tags=["a", "b"])
    c1, c2 = Clique((T("a"),)), Clique((T("b"),))
    total = scorer.score([c1, c2], obj)
    assert total == pytest.approx(
        scorer.potential(c1, obj) + scorer.potential(c2, obj)
    )


@settings(deadline=None, max_examples=30)
@given(delta=st.floats(0.0625, 1.0), age=st.integers(0, 6))
def test_temporal_potential_decays_geometrically(delta, age):
    scorer = CliqueScorer(
        UnitCorrelations(), MRFParameters(lambdas={1: 1.0}, alpha=1.0, delta=delta)
    )
    obj = MediaObject.build("o", tags=["a"])
    now = 6
    fresh = scorer.potential(Clique((T("a"),), timestamp=now), obj, current_month=now)
    aged = scorer.potential(Clique((T("a"),), timestamp=now - age), obj, current_month=now)
    assert aged == pytest.approx(fresh * delta**age)


def test_zero_alpha_score_independent_of_matching_frequency():
    """With α=0 only the smoothing term counts: duplicating the clique
    feature inside the object must not change P through the freq path
    (the smoothing set is over distinct features)."""
    scorer = CliqueScorer(UnitCorrelations(), MRFParameters(alpha=0.0))
    clique = Clique((T("hit"),))
    one = MediaObject.build("one", tags=["hit", "other"])
    many = MediaObject.build("many", tags=["hit"] * 4 + ["other"])
    assert scorer.joint_probability(clique, one) == pytest.approx(
        scorer.joint_probability(clique, many)
    )


@settings(deadline=None, max_examples=30)
@given(bag=bags())
def test_engine_scan_scores_deterministic(bag):
    """Scoring the same (cliques, object) twice yields identical
    values — caches must be transparent."""
    scorer = CliqueScorer(UnitCorrelations(), MRFParameters())
    obj = MediaObject(object_id="o", features=bag)
    cliques = [Clique((f,)) for f in bag]
    assert scorer.score(cliques, obj) == scorer.score(cliques, obj)
