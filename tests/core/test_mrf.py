"""MRF potential functions: hand-computed Eq. 7/9/10 checks."""

import pytest

from repro.core.cliques import Clique
from repro.core.correlation import CorrelationModel, OccurrenceStats
from repro.core.mrf import DEFAULT_LAMBDAS, CliqueScorer, MRFParameters, MRFSimilarity
from repro.core.objects import Feature, MediaObject

T = Feature.text
U = Feature.user


class FixedCorrelations(CorrelationModel):
    """Explicit pairwise correlations and CorS values for hand checks."""

    def __init__(self, pairs=None, cors_values=None, threshold=0.5):
        super().__init__(stats=OccurrenceStats([]), default_threshold=threshold)
        self._pairs = {frozenset(p): v for p, v in (pairs or {}).items()}
        self._cors_values = {tuple(sorted(k)): v for k, v in (cors_values or {}).items()}

    def _compute_cor(self, a, b):
        return self._pairs.get(frozenset((a, b)), 0.0)

    def cors(self, features):
        if len(features) == 1:
            return 1.0
        return self._cors_values.get(tuple(sorted(features)), 1.0)


# ----------------------------------------------------------------------
# MRFParameters
# ----------------------------------------------------------------------
def test_default_lambdas_follow_metzler_croft():
    p = MRFParameters()
    assert p.lambdas == DEFAULT_LAMBDAS
    assert p.max_clique_size == 3


def test_parameters_validation():
    with pytest.raises(ValueError):
        MRFParameters(lambdas={})
    with pytest.raises(ValueError):
        MRFParameters(lambdas={0: 1.0})
    with pytest.raises(ValueError):
        MRFParameters(lambdas={1: -0.1})
    with pytest.raises(ValueError):
        MRFParameters(alpha=1.5)
    with pytest.raises(ValueError):
        MRFParameters(delta=0.0)


def test_max_clique_size_ignores_zero_weights():
    p = MRFParameters(lambdas={1: 1.0, 2: 0.0, 3: 0.0})
    assert p.max_clique_size == 1


def test_lambda_for_missing_size_is_zero():
    assert MRFParameters().lambda_for(7) == 0.0


def test_with_updates_is_functional():
    p = MRFParameters()
    q = p.with_updates(alpha=0.9)
    assert q.alpha == 0.9
    assert p.alpha == 0.5
    assert q.lambdas == p.lambdas


# ----------------------------------------------------------------------
# Eq. 7 — joint probability
# ----------------------------------------------------------------------
def test_frequency_part_exact():
    # alpha=1: P = freq/|O|; 'a' appears twice among 4 occurrences.
    scorer = CliqueScorer(FixedCorrelations(), MRFParameters(alpha=1.0))
    obj = MediaObject.build("o", tags=["a", "a", "b", "c"])
    assert scorer.joint_probability(Clique((T("a"),)), obj) == pytest.approx(2 / 4)


def test_joint_frequency_is_min_of_members():
    scorer = CliqueScorer(FixedCorrelations(), MRFParameters(alpha=1.0))
    obj = MediaObject.build("o", tags=["a", "a", "b"])
    clique = Clique((T("a"), T("b")))
    assert scorer.joint_probability(clique, obj) == pytest.approx(1 / 3)


def test_absent_member_zeroes_frequency_part():
    scorer = CliqueScorer(FixedCorrelations(), MRFParameters(alpha=1.0))
    obj = MediaObject.build("o", tags=["a"])
    clique = Clique((T("a"), T("zzz")))
    assert scorer.joint_probability(clique, obj) == 0.0


def test_smoothing_part_exact():
    # alpha=0: P = sum of Cor(clique member, other object features)
    #              / (k * |O - c|)
    cor = FixedCorrelations(pairs={(T("q"), T("x")): 0.4, (T("q"), T("y")): 0.2})
    scorer = CliqueScorer(cor, MRFParameters(alpha=0.0))
    obj = MediaObject.build("o", tags=["x", "y"])
    clique = Clique((T("q"),))
    assert scorer.joint_probability(clique, obj) == pytest.approx((0.4 + 0.2) / (1 * 2))


def test_smoothing_excludes_clique_members_present_in_object():
    # clique = {a}; object = {a, x}. Rest = {x} only; Cor(a,a)=1 must NOT count.
    cor = FixedCorrelations(pairs={(T("a"), T("x")): 0.5})
    scorer = CliqueScorer(cor, MRFParameters(alpha=0.0))
    obj = MediaObject.build("o", tags=["a", "x"])
    assert scorer.joint_probability(Clique((T("a"),)), obj) == pytest.approx(0.5)


def test_smoothing_zero_when_object_covered_by_clique():
    cor = FixedCorrelations()
    scorer = CliqueScorer(cor, MRFParameters(alpha=0.0))
    obj = MediaObject.build("o", tags=["a"])
    assert scorer.joint_probability(Clique((T("a"),)), obj) == 0.0


def test_alpha_blends_parts():
    cor = FixedCorrelations(pairs={(T("a"), T("x")): 0.8})
    scorer = CliqueScorer(cor, MRFParameters(alpha=0.25))
    obj = MediaObject.build("o", tags=["a", "x"])
    freq_part = 1 / 2
    smooth_part = 0.8 / 1
    expected = 0.25 * freq_part + 0.75 * smooth_part
    assert scorer.joint_probability(Clique((T("a"),)), obj) == pytest.approx(expected)


# ----------------------------------------------------------------------
# Eqs. 9 / 10 — weighted potentials
# ----------------------------------------------------------------------
def test_potential_multiplies_lambda_and_cors():
    cor = FixedCorrelations(cors_values={(T("a"), T("b")): 0.5})
    params = MRFParameters(lambdas={2: 0.4}, alpha=1.0)
    scorer = CliqueScorer(cor, params)
    obj = MediaObject.build("o", tags=["a", "b"])
    clique = Clique((T("a"), T("b")))
    # P = min(1,1)/2 = 0.5; potential = 0.4 * 0.5 * 0.5
    assert scorer.potential(clique, obj) == pytest.approx(0.4 * 0.5 * 0.5)


def test_potential_zero_weight_short_circuits():
    scorer = CliqueScorer(FixedCorrelations(), MRFParameters(lambdas={1: 1.0}))
    obj = MediaObject.build("o", tags=["a"])
    assert scorer.potential(Clique((T("a"), T("b"))), obj) == 0.0  # size 2 unweighted


def test_use_cors_false_skips_weighting():
    cor = FixedCorrelations(cors_values={(T("a"), T("b")): 0.25})
    params = MRFParameters(lambdas={2: 1.0}, alpha=1.0, use_cors=False)
    scorer = CliqueScorer(cor, params)
    obj = MediaObject.build("o", tags=["a", "b"])
    assert scorer.potential(Clique((T("a"), T("b"))), obj) == pytest.approx(0.5)


def test_temporal_decay_applies_with_timestamp():
    params = MRFParameters(lambdas={1: 1.0}, alpha=1.0, delta=0.5)
    scorer = CliqueScorer(FixedCorrelations(), params)
    obj = MediaObject.build("o", tags=["a"])
    fresh = scorer.potential(Clique((T("a"),), timestamp=3), obj, current_month=3)
    aged = scorer.potential(Clique((T("a"),), timestamp=1), obj, current_month=3)
    assert aged == pytest.approx(fresh * 0.25)


def test_no_decay_without_current_month():
    params = MRFParameters(lambdas={1: 1.0}, alpha=1.0, delta=0.5)
    scorer = CliqueScorer(FixedCorrelations(), params)
    obj = MediaObject.build("o", tags=["a"])
    assert scorer.potential(Clique((T("a"),), timestamp=0), obj) == pytest.approx(1.0)


def test_score_sums_potentials():
    params = MRFParameters(lambdas={1: 1.0}, alpha=1.0)
    scorer = CliqueScorer(FixedCorrelations(), params)
    obj = MediaObject.build("o", tags=["a", "b"])
    cliques = [Clique((T("a"),)), Clique((T("b"),)), Clique((T("zzz"),))]
    assert scorer.score(cliques, obj) == pytest.approx(0.5 + 0.5 + 0.0)


def test_release_clears_candidate_cache():
    scorer = CliqueScorer(FixedCorrelations(), MRFParameters(alpha=0.0))
    obj = MediaObject.build("o", tags=["a", "b"])
    scorer.joint_probability(Clique((T("a"),)), obj)
    scorer.release("o")  # must not raise; cache rebuilt next call
    scorer.joint_probability(Clique((T("a"),)), obj)


def test_row_sum_cache_bounded_fifo():
    """Long scans that never release() must not grow without bound."""
    scorer = CliqueScorer(FixedCorrelations(), MRFParameters(alpha=0.0), max_cached_objects=4)
    clique = Clique((T("a"),))
    for i in range(10):
        scorer.joint_probability(clique, MediaObject.build(f"o{i}", tags=["a", "b"]))
    assert len(scorer._row_sums) <= 4
    assert "o9" in scorer._row_sums  # newest entry survives
    assert "o0" not in scorer._row_sums  # oldest evicted


def test_invalid_cache_bound_rejected():
    with pytest.raises(ValueError):
        CliqueScorer(FixedCorrelations(), MRFParameters(), max_cached_objects=0)


def test_joint_components_match_joint_probability():
    """The build-time factorization must re-mix to the scorer's Eq. 7
    value bit-exactly — the contract the impact-ordered index rests on."""
    from repro.core.mrf import joint_components

    cor = FixedCorrelations(pairs={(T("a"), T("b")): 0.4, (T("a"), T("c")): 0.2})
    obj = MediaObject.build("o", tags=["a", "b", "c"])
    clique = Clique((T("a"),))
    for alpha in (0.0, 0.3, 0.7, 1.0):
        scorer = CliqueScorer(cor, MRFParameters(alpha=alpha))
        freq_part, smooth_part = joint_components(clique, obj, cor, {})
        assert alpha * freq_part + (1.0 - alpha) * smooth_part == scorer.joint_probability(
            clique, obj
        )


# ----------------------------------------------------------------------
# MRFSimilarity facade
# ----------------------------------------------------------------------
def test_similarity_facade_end_to_end(tiny_corpus, correlations):
    sim = MRFSimilarity(correlations)
    query = tiny_corpus[0]
    same = sim.similarity(query, query)
    other = sim.similarity(query, tiny_corpus[1])
    assert same > 0
    # self-similarity should not be below similarity to an arbitrary object
    assert same >= other or abs(same - other) < 1e-9


def test_similarity_symmetric_inputs_give_nonnegative(tiny_corpus, correlations):
    sim = MRFSimilarity(correlations, max_clique_size=2)
    assert sim.max_clique_size == 2
    value = sim.similarity(tiny_corpus[2], tiny_corpus[3])
    assert value >= 0.0
