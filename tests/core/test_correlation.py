"""Correlation statistics: Eq. 1 cosine, Eq. 8 CorS, table dispatch."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.correlation import CorrelationModel, OccurrenceStats
from repro.core.objects import Feature, FeatureType, MediaObject
from repro.social.users import SocialGraph

T = Feature.text
V = Feature.visual
U = Feature.user


def make_stats():
    objects = [
        MediaObject.build("o1", tags=["sun", "sea"], users=["u1"]),
        MediaObject.build("o2", tags=["sun"], users=["u1", "u2"]),
        MediaObject.build("o3", tags=["sea"], users=["u2"]),
        MediaObject.build("o4", tags=["city"]),
    ]
    return OccurrenceStats(objects)


# ----------------------------------------------------------------------
# Eq. 1 — co-occurrence cosine
# ----------------------------------------------------------------------
def test_cosine_exact_value():
    stats = make_stats()
    # sun in {o1, o2}, u1 in {o1, o2}: identical binary vectors
    assert stats.cooccurrence_cosine(T("sun"), U("u1")) == pytest.approx(1.0)


def test_cosine_partial_overlap():
    stats = make_stats()
    # sun {o1,o2}, sea {o1,o3}: dot 1, norms sqrt2 each
    assert stats.cooccurrence_cosine(T("sun"), T("sea")) == pytest.approx(0.5)


def test_cosine_disjoint_is_zero():
    stats = make_stats()
    assert stats.cooccurrence_cosine(T("city"), U("u1")) == 0.0


def test_cosine_unknown_feature_zero():
    stats = make_stats()
    assert stats.cooccurrence_cosine(T("ghost"), T("sun")) == 0.0


def test_cosine_respects_frequency():
    objects = [
        MediaObject.build("a", tags=["x"], visual_words=["v"] * 3),
        MediaObject.build("b", tags=["x"], visual_words=["v"]),
    ]
    stats = OccurrenceStats(objects)
    # x = (1,1), v = (3,1): cos = 4 / (sqrt2 * sqrt10)
    expected = 4 / (math.sqrt(2) * math.sqrt(10))
    assert stats.cooccurrence_cosine(T("x"), V("v")) == pytest.approx(expected)


def test_cosine_symmetry():
    stats = make_stats()
    assert stats.cooccurrence_cosine(T("sun"), T("sea")) == stats.cooccurrence_cosine(
        T("sea"), T("sun")
    )


# ----------------------------------------------------------------------
# moments and document frequency
# ----------------------------------------------------------------------
def test_moments_include_zeros():
    stats = make_stats()
    mean, std = stats.moments(T("sun"))
    assert mean == pytest.approx(0.5)  # 2 occurrences over 4 objects
    assert std == pytest.approx(0.5)   # Bernoulli(0.5)


def test_moments_unknown_feature():
    stats = make_stats()
    assert stats.moments(T("ghost")) == (0.0, 0.0)


def test_document_frequency():
    stats = make_stats()
    assert stats.document_frequency(T("sun")) == 2
    assert stats.document_frequency(T("ghost")) == 0


# ----------------------------------------------------------------------
# Eq. 8 — CorS
# ----------------------------------------------------------------------
def test_cors_singleton_is_neutral():
    stats = make_stats()
    assert stats.cors([T("sun")]) == 1.0


def test_cors_pair_equals_pearson():
    stats = make_stats()
    # Verify against a direct Pearson computation over dense vectors.
    sun = np.array([1, 1, 0, 0], dtype=float)
    u1 = np.array([1, 1, 0, 0], dtype=float)
    expected = np.corrcoef(sun, u1)[0, 1]
    assert stats.cors([T("sun"), U("u1")]) == pytest.approx(expected)


def test_cors_negative_clamps_to_zero():
    stats = make_stats()
    # sun {o1,o2} vs u2 {o2,o3}: slight negative? compute directly
    sun = np.array([1, 1, 0, 0], dtype=float)
    city = np.array([0, 0, 0, 1], dtype=float)
    assert np.corrcoef(sun, city)[0, 1] < 0
    assert stats.cors([T("sun"), T("city")]) == 0.0


def test_cors_empty_rejected():
    stats = make_stats()
    with pytest.raises(ValueError):
        stats.cors([])


def test_cors_zero_variance_feature_gives_zero():
    objects = [
        MediaObject.build("a", tags=["always", "x"]),
        MediaObject.build("b", tags=["always"]),
    ]
    stats = OccurrenceStats(objects)
    # 'always' appears once in every object -> zero variance
    assert stats.cors([T("always"), T("x")]) == 0.0


def test_cors_triple_matches_dense_computation():
    objects = [
        MediaObject.build("a", tags=["x", "y"], users=["u"]),
        MediaObject.build("b", tags=["x", "y"], users=["u"]),
        MediaObject.build("c", tags=["x"]),
        MediaObject.build("d", tags=["y"]),
        MediaObject.build("e", users=["u"]),
        MediaObject.build("f"),
    ]
    # 'f' has no features: a corpus object contributing only zeros
    objects[5] = MediaObject.build("f", tags=["zzz"])
    stats = OccurrenceStats(objects)
    vecs = {
        "x": np.array([1, 1, 1, 0, 0, 0], float),
        "y": np.array([1, 1, 0, 1, 0, 0], float),
        "u": np.array([1, 1, 0, 0, 1, 0], float),
    }
    z = {k: (v - v.mean()) / v.std() for k, v in vecs.items()}
    expected = float(np.mean(z["x"] * z["y"] * z["u"]))
    got = stats.cors([T("x"), T("y"), U("u")])
    assert got == pytest.approx(max(expected, 0.0))


@settings(deadline=None, max_examples=30)
@given(st.data())
def test_cors_pair_matches_numpy_pearson(data):
    """Sparse CorS equals dense Pearson for random pairs."""
    n = data.draw(st.integers(3, 12))
    a = data.draw(st.lists(st.integers(0, 3), min_size=n, max_size=n))
    b = data.draw(st.lists(st.integers(0, 3), min_size=n, max_size=n))
    objects = [
        MediaObject.build(
            f"o{i}",
            tags=["a"] * a[i],
            users=["b"] * b[i],
        )
        for i in range(n)
    ]
    # skip degenerate objects (empty feature bags are fine for stats)
    stats = OccurrenceStats(objects)
    av, bv = np.array(a, float), np.array(b, float)
    if av.std() == 0 or bv.std() == 0:
        assert stats.cors([T("a"), U("b")]) == 0.0
    else:
        expected = max(float(np.corrcoef(av, bv)[0, 1]), 0.0)
        assert stats.cors([T("a"), U("b")]) == pytest.approx(expected, abs=1e-9)


# ----------------------------------------------------------------------
# CorrelationModel dispatch
# ----------------------------------------------------------------------
def make_model(**kwargs):
    stats = make_stats()
    return CorrelationModel(stats=stats, **kwargs)


def test_identity_correlation_is_one():
    model = make_model()
    assert model.cor(T("sun"), T("sun")) == 1.0


def test_inter_type_uses_cosine():
    model = make_model()
    assert model.cor(T("sun"), U("u1")) == pytest.approx(1.0)


def test_intra_text_uses_supplied_similarity():
    model = make_model(text_similarity=lambda a, b: 0.42)
    assert model.cor(T("sun"), T("sea")) == 0.42


def test_intra_text_falls_back_to_cosine():
    model = make_model()
    assert model.cor(T("sun"), T("sea")) == pytest.approx(0.5)


def test_intra_user_uses_social_graph():
    social = SocialGraph({"u1": ["g"], "u2": ["g"], "u3": []})
    model = make_model(social=social)
    assert model.cor(U("u1"), U("u2")) == 1.0
    assert model.cor(U("u1"), U("u3")) == 0.0


def test_threshold_table_keys_canonical():
    assert CorrelationModel.table_key(FeatureType.USER, FeatureType.TEXT) == ("T", "U")
    assert CorrelationModel.table_key(FeatureType.TEXT, FeatureType.USER) == ("T", "U")


def test_thresholds_default_and_override():
    model = make_model(thresholds={("T", "T"): 0.9}, default_threshold=0.3)
    assert model.threshold(FeatureType.TEXT, FeatureType.TEXT) == 0.9
    assert model.threshold(FeatureType.TEXT, FeatureType.USER) == 0.3
    model.set_threshold(FeatureType.TEXT, FeatureType.USER, 0.7)
    assert model.threshold(FeatureType.USER, FeatureType.TEXT) == 0.7


def test_correlated_uses_strict_threshold():
    model = make_model(text_similarity=lambda a, b: 0.5, thresholds={("T", "T"): 0.5})
    assert not model.correlated(T("a"), T("b"))  # equal is not above


def test_cor_is_cached():
    calls = []

    def sim(a, b):
        calls.append((a, b))
        return 0.5

    model = make_model(text_similarity=sim)
    model.cor(T("sun"), T("sea"))
    model.cor(T("sea"), T("sun"))
    # The opt-in symmetry contract recomputes the measure with swapped
    # operands, doubling the expected call count when active.
    from repro.diagnostics.contracts import contracts_enabled

    assert len(calls) == (2 if contracts_enabled() else 1)
    assert model.cache_size() == 1
