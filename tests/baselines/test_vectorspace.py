"""Vector space: TF-IDF matrices, fold-in, profiles."""

import numpy as np
import pytest

from repro.baselines.vectorspace import VectorSpace, union_object
from repro.core.objects import Feature, FeatureType, MediaObject
from repro.social.corpus import Corpus
from repro.social.users import SocialGraph


@pytest.fixture(scope="module")
def space():
    objects = [
        MediaObject.build("o1", tags=["sun", "sea"], users=["u1"]),
        MediaObject.build("o2", tags=["sun"], users=["u1", "u2"]),
        MediaObject.build("o3", tags=["city"], visual_words=["vw0", "vw0"]),
    ]
    return VectorSpace(Corpus(objects=objects, social=SocialGraph({})))


def test_column_counts(space):
    assert space.n_columns(FeatureType.TEXT) == 3
    assert space.n_columns(FeatureType.USER) == 2
    assert space.n_columns(FeatureType.VISUAL) == 1


def test_rows_are_normalized(space):
    for ftype in FeatureType:
        m = space.matrix(ftype)
        norms = np.sqrt(np.asarray(m.multiply(m).sum(axis=1)).ravel())
        for norm in norms:
            assert norm == pytest.approx(1.0) or norm == pytest.approx(0.0)


def test_vector_matches_matrix_row(space):
    obj = space.corpus[0]
    vec = space.vector(obj, FeatureType.TEXT)
    row = space.matrix(FeatureType.TEXT)[0]
    np.testing.assert_allclose(vec.toarray(), row.toarray())


def test_cosine_scores_self_is_one(space):
    scores = space.cosine_scores(space.corpus[0], FeatureType.TEXT)
    assert scores[0] == pytest.approx(1.0)


def test_cosine_scores_disjoint_zero(space):
    scores = space.cosine_scores(space.corpus[2], FeatureType.TEXT)
    assert scores[1] == pytest.approx(0.0)  # city vs sun


def test_oov_features_dropped(space):
    foreign = MediaObject.build("x", tags=["neverseen"])
    vec = space.vector(foreign, FeatureType.TEXT)
    assert vec.nnz == 0


def test_stacked_matrix_width(space):
    stacked = space.stacked_matrix()
    assert stacked.shape == (3, 3 + 1 + 2)


def test_stacked_vector_width(space):
    v = space.stacked_vector(space.corpus[1])
    assert v.shape == (1, 6)


def test_idf_downweights_common_terms():
    objects = [
        MediaObject.build(f"o{i}", tags=["common"] + (["rare"] if i == 0 else []))
        for i in range(10)
    ]
    space = VectorSpace(Corpus(objects=objects, social=SocialGraph({})))
    vec = space.vector(objects[0], FeatureType.TEXT).toarray().ravel()
    cols = {f.name: i for f, i in space._columns[FeatureType.TEXT].items()}
    assert vec[cols["rare"]] > vec[cols["common"]]


def test_no_idf_mode():
    objects = [MediaObject.build("a", tags=["x", "y"]), MediaObject.build("b", tags=["x"])]
    space = VectorSpace(Corpus(objects=objects, social=SocialGraph({})), use_idf=False)
    vec = space.vector(objects[0], FeatureType.TEXT).toarray().ravel()
    # raw counts, both 1, normalized equally
    assert vec[vec > 0][0] == pytest.approx(vec[vec > 0][1])


# ----------------------------------------------------------------------
# union_object (the "big object" profile)
# ----------------------------------------------------------------------
def test_union_accumulates_frequencies():
    h = [
        MediaObject.build("a", tags=["x"], timestamp=1),
        MediaObject.build("b", tags=["x", "y"], timestamp=2),
    ]
    u = union_object(h)
    assert u.frequency(Feature.text("x")) == 2
    assert u.frequency(Feature.text("y")) == 1
    assert u.timestamp == 2  # latest


def test_union_rejects_empty():
    with pytest.raises(ValueError):
        union_object([])


def test_union_custom_id():
    u = union_object([MediaObject.build("a", tags=["x"])], object_id="profile:me")
    assert u.object_id == "profile:me"
