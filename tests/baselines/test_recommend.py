"""Profile-as-query recommendation adapter."""

import pytest

from repro.baselines.recommend import ProfileRecommender
from repro.baselines.single import SingleFeatureRetriever
from repro.baselines.vectorspace import VectorSpace
from repro.core.objects import FeatureType
from repro.social.temporal import TemporalSplit


@pytest.fixture(scope="module")
def adapter(rec_corpus):
    space = VectorSpace(rec_corpus)
    base = SingleFeatureRetriever(space, FeatureType.TEXT)
    return ProfileRecommender(base, rec_corpus)


def test_name_passthrough(adapter):
    assert adapter.name == "Text"


def test_default_split_is_paper_default(adapter, rec_corpus):
    assert adapter.split == TemporalSplit.paper_default(rec_corpus.n_months)


def test_recommendations_are_eval_window_objects(adapter, rec_corpus):
    user = rec_corpus.favorite_users()[0]
    hits = adapter.recommend(user, k=10)
    assert hits
    for h in hits:
        assert rec_corpus.get(h.object_id).timestamp in adapter.split.evaluation


def test_unknown_user_raises(adapter):
    with pytest.raises(ValueError):
        adapter.recommend("nobody", k=5)


def test_recommendations_sorted(adapter, rec_corpus):
    user = rec_corpus.favorite_users()[1]
    hits = adapter.recommend(user, k=10)
    scores = [h.score for h in hits]
    assert scores == sorted(scores, reverse=True)


def test_profile_objects_can_still_appear_if_in_window(adapter, rec_corpus):
    """The adapter never leaks profile objects: profile-window objects
    are outside the evaluation window by construction."""
    user = rec_corpus.favorite_users()[0]
    profile_ids = {
        e.object_id for e in rec_corpus.favorites_of(user, adapter.split.profile)
    }
    hits = adapter.recommend(user, k=20)
    assert profile_ids.isdisjoint({h.object_id for h in hits})
