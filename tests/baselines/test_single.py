"""Single-modality retrievers."""

import pytest

from repro.baselines.single import SingleFeatureRetriever
from repro.baselines.vectorspace import VectorSpace
from repro.core.objects import FeatureType


@pytest.fixture(scope="module")
def space(tiny_corpus):
    return VectorSpace(tiny_corpus)


def test_names(space):
    assert SingleFeatureRetriever(space, FeatureType.TEXT).name == "Text"
    assert SingleFeatureRetriever(space, FeatureType.VISUAL).name == "Visual"
    assert SingleFeatureRetriever(space, FeatureType.USER).name == "User"


def test_search_returns_sorted_topk(space, tiny_corpus):
    r = SingleFeatureRetriever(space, FeatureType.TEXT)
    hits = r.search(tiny_corpus[0], k=5)
    assert len(hits) == 5
    scores = [h.score for h in hits]
    assert scores == sorted(scores, reverse=True)


def test_query_excluded(space, tiny_corpus):
    r = SingleFeatureRetriever(space, FeatureType.TEXT)
    hits = r.search(tiny_corpus[0], k=10)
    assert tiny_corpus[0].object_id not in [h.object_id for h in hits]


def test_self_retrieval_with_inclusion(space, tiny_corpus):
    r = SingleFeatureRetriever(space, FeatureType.TEXT)
    hits = r.search(tiny_corpus[0], k=1, exclude_query=False)
    assert hits[0].object_id == tiny_corpus[0].object_id
    assert hits[0].score == pytest.approx(1.0)


def test_candidate_restriction(space, tiny_corpus):
    r = SingleFeatureRetriever(space, FeatureType.TEXT)
    rows = [1, 2, 3]
    hits = r.search(tiny_corpus[0], k=10, candidate_rows=rows)
    allowed = {tiny_corpus[i].object_id for i in rows}
    assert {h.object_id for h in hits} <= allowed
    assert len(hits) == 3


def test_empty_candidate_rows(space, tiny_corpus):
    r = SingleFeatureRetriever(space, FeatureType.TEXT)
    assert r.search(tiny_corpus[0], k=5, candidate_rows=[]) == []


def test_modality_isolation(space, tiny_corpus):
    """A text retriever must rank by tags only: an object sharing only
    users with the query gets score 0."""
    r = SingleFeatureRetriever(space, FeatureType.TEXT)
    scores = r._score_all(tiny_corpus[0].restricted_to([FeatureType.USER]))
    assert (scores == 0).all()
