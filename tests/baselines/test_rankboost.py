"""RankBoost late-fusion baseline."""

import numpy as np
import pytest

from repro.baselines.rankboost import RankBoostRetriever, WeakRanker
from repro.baselines.vectorspace import VectorSpace
from repro.core.objects import ALL_TYPES
from repro.eval.oracle import TopicOracle
from repro.eval.protocol import sample_queries


@pytest.fixture(scope="module")
def space(tiny_corpus):
    return VectorSpace(tiny_corpus)


@pytest.fixture(scope="module")
def fitted(space, tiny_corpus):
    oracle = TopicOracle(tiny_corpus)
    queries = sample_queries(tiny_corpus, n_queries=6, seed=77)
    return RankBoostRetriever(space, rounds=10).fit(queries, oracle)


def test_fit_selects_rankers(fitted):
    assert fitted.is_fitted
    assert 1 <= len(fitted.rankers) <= 10
    for ranker in fitted.rankers:
        assert 0 <= ranker.modality < len(ALL_TYPES)
        assert np.isfinite(ranker.alpha)


def test_unfitted_falls_back_to_average(space, tiny_corpus):
    rb = RankBoostRetriever(space)
    assert not rb.is_fitted
    scores = rb._score_all(tiny_corpus[0])
    assert scores.shape == (len(tiny_corpus),)


def test_search_interface(fitted, tiny_corpus):
    hits = fitted.search(tiny_corpus[0], k=5)
    assert len(hits) == 5
    assert tiny_corpus[0].object_id not in [h.object_id for h in hits]


def test_fitted_beats_chance(fitted, tiny_corpus):
    """Boosted fusion must retrieve same-topic objects above chance."""
    oracle = TopicOracle(tiny_corpus)
    rel = total = 0
    for query in list(tiny_corpus)[:8]:
        for h in fitted.search(query, k=5):
            total += 1
            rel += oracle.relevant(query.object_id, h.object_id)
    assert rel / total > 1 / 3  # chance is ~2 topics of 6


def test_weak_ranker_stump_evaluation():
    ranker = WeakRanker(modality=1, threshold=0.5, alpha=1.0)
    scores = np.array([[0.0, 0.6], [0.0, 0.4]])
    np.testing.assert_array_equal(ranker.evaluate(scores), [1.0, 0.0])


def test_weak_ranker_continuous_evaluation():
    ranker = WeakRanker(modality=0, threshold=None, alpha=1.0)
    scores = np.array([[0.3, 0.0], [0.9, 0.0]])
    np.testing.assert_array_equal(ranker.evaluate(scores), [0.3, 0.9])


def test_modality_scores_normalized(space, tiny_corpus):
    rb = RankBoostRetriever(space)
    scores = rb._modality_scores(tiny_corpus[0])
    assert scores.shape == (len(tiny_corpus), 3)
    assert scores.min() >= 0.0 and scores.max() <= 1.0


def test_degenerate_training_keeps_fallback(space, tiny_corpus):
    """Training with zero queries must not crash nor pretend to fit."""
    oracle = TopicOracle(tiny_corpus)
    rb = RankBoostRetriever(space).fit([], oracle)
    assert not rb.is_fitted


def test_rounds_validation(space):
    with pytest.raises(ValueError):
        RankBoostRetriever(space, rounds=0)


def test_modality_of_maps_back():
    assert RankBoostRetriever.modality_of(0) == ALL_TYPES[0]


def test_r_statistic_prefers_separating_ranker():
    """r(h)=1 for a ranker scoring all relevant 1 and all irrelevant 0."""
    h = np.array([1.0, 1.0, 0.0, 0.0])
    v = np.full(4, 0.25)
    rel = np.array([True, True, False, False])
    qid = np.zeros(4, dtype=int)
    r = RankBoostRetriever._weighted_r(h, v, rel, qid)
    assert r == pytest.approx(1.0)


def test_r_statistic_zero_for_constant_ranker():
    h = np.ones(4)
    v = np.full(4, 0.25)
    rel = np.array([True, False, True, False])
    qid = np.zeros(4, dtype=int)
    assert RankBoostRetriever._weighted_r(h, v, rel, qid) == pytest.approx(0.0)


def test_r_statistic_negative_for_inverted_ranker():
    h = np.array([0.0, 0.0, 1.0, 1.0])
    v = np.full(4, 0.25)
    rel = np.array([True, True, False, False])
    qid = np.zeros(4, dtype=int)
    assert RankBoostRetriever._weighted_r(h, v, rel, qid) == pytest.approx(-1.0)
