"""Calibrated Score Averaging baseline."""

import numpy as np
import pytest

from repro.baselines.csa import CalibratedScoreAveraging
from repro.baselines.vectorspace import VectorSpace
from repro.eval.oracle import TopicOracle
from repro.eval.protocol import sample_queries


@pytest.fixture(scope="module")
def space(tiny_corpus):
    return VectorSpace(tiny_corpus)


def test_default_weights_uniform(space):
    csa = CalibratedScoreAveraging(space)
    np.testing.assert_allclose(csa.weights, [1 / 3] * 3)


def test_fit_returns_convex_weights(space, tiny_corpus):
    oracle = TopicOracle(tiny_corpus)
    queries = sample_queries(tiny_corpus, n_queries=4, seed=55)
    csa = CalibratedScoreAveraging(space, grid_steps=3).fit(queries, oracle, cutoff=5)
    assert csa.weights.sum() == pytest.approx(1.0)
    assert (csa.weights >= 0).all()


def test_fit_never_hurts_on_training_metric(space, tiny_corpus):
    oracle = TopicOracle(tiny_corpus)
    queries = sample_queries(tiny_corpus, n_queries=4, seed=55)
    csa = CalibratedScoreAveraging(space, grid_steps=3)
    cache = [csa._modality_scores(q) for q in queries]
    uniform = csa._mean_precision(queries, cache, np.full(3, 1 / 3), oracle, 5)
    csa.fit(queries, oracle, cutoff=5)
    fitted = csa._mean_precision(queries, cache, csa.weights, oracle, 5)
    assert fitted >= uniform - 1e-9


def test_search_interface(space, tiny_corpus):
    csa = CalibratedScoreAveraging(space)
    hits = csa.search(tiny_corpus[0], k=5)
    assert len(hits) == 5


def test_scores_are_weighted_average(space, tiny_corpus):
    csa = CalibratedScoreAveraging(space)
    scores = csa._score_all(tiny_corpus[0])
    manual = csa._modality_scores(tiny_corpus[0]) @ csa.weights
    np.testing.assert_allclose(scores, manual)


def test_grid_steps_validation(space):
    with pytest.raises(ValueError):
        CalibratedScoreAveraging(space, grid_steps=1)
