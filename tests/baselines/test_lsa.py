"""LSA early-fusion baseline."""

import numpy as np
import pytest

from repro.baselines.lsa import LSAFusionRetriever
from repro.baselines.vectorspace import VectorSpace


@pytest.fixture(scope="module")
def lsa(tiny_corpus):
    return LSAFusionRetriever(VectorSpace(tiny_corpus), n_components=24)


def test_components_capped_by_rank(tiny_corpus):
    small = LSAFusionRetriever(VectorSpace(tiny_corpus), n_components=10_000)
    assert small.n_components < 10_000


def test_fold_in_is_unit_vector(lsa, tiny_corpus):
    latent = lsa.fold_in(tiny_corpus[0])
    assert latent.shape == (lsa.n_components,)
    assert np.linalg.norm(latent) == pytest.approx(1.0)


def test_self_scores_near_top(lsa, tiny_corpus):
    """Fold-in of a corpus object lands near its own document vector."""
    hits = lsa.search(tiny_corpus[0], k=5, exclude_query=False)
    ids = [h.object_id for h in hits]
    assert tiny_corpus[0].object_id in ids


def test_scores_bounded_by_one(lsa, tiny_corpus):
    scores = lsa._score_all(tiny_corpus[1])
    assert (scores <= 1.0 + 1e-9).all()
    assert (scores >= -1.0 - 1e-9).all()


def test_latent_space_groups_topics(lsa, tiny_corpus):
    """Same-topic objects are closer in latent space than cross-topic,
    on average — the point of LSA."""
    from repro.eval.oracle import TopicOracle

    oracle = TopicOracle(tiny_corpus)
    same, cross = [], []
    for query in list(tiny_corpus)[:10]:
        scores = lsa._score_all(query)
        for i, obj in enumerate(tiny_corpus):
            if obj.object_id == query.object_id:
                continue
            (same if oracle.relevant(query.object_id, obj.object_id) else cross).append(
                scores[i]
            )
    assert np.mean(same) > np.mean(cross)


def test_rejects_degenerate_corpus():
    from repro.core.objects import MediaObject
    from repro.social.corpus import Corpus
    from repro.social.users import SocialGraph

    corpus = Corpus(objects=[MediaObject.build("only", tags=["x"])], social=SocialGraph({}))
    with pytest.raises(ValueError):
        LSAFusionRetriever(VectorSpace(corpus))
