"""Tensor-product (TP) fusion baseline."""

import numpy as np
import pytest

from repro.baselines.tensor import TensorProductRetriever
from repro.baselines.vectorspace import VectorSpace
from repro.core.objects import FeatureType, MediaObject


@pytest.fixture(scope="module")
def space(tiny_corpus):
    return VectorSpace(tiny_corpus)


@pytest.fixture(scope="module")
def tp(space):
    return TensorProductRetriever(space)


def test_scores_nonnegative(tp, tiny_corpus):
    scores = tp._score_all(tiny_corpus[0])
    assert (scores >= 0).all()


def test_product_semantics(tp, space, tiny_corpus):
    """TP score equals the product of raw per-modality cosines + ε."""
    query = tiny_corpus[0]
    raw = tp._raw
    expected = np.ones(len(tiny_corpus))
    for ftype in FeatureType:
        expected *= raw.cosine_scores(query, ftype) + tp._epsilon
    np.testing.assert_allclose(tp._score_all(query), expected)


def test_zero_modality_punished_multiplicatively(tp, tiny_corpus):
    """A candidate with no overlap in one modality scores near ε times
    the rest — the no-pruning failure mode."""
    query = tiny_corpus[0]
    text_only = query.restricted_to([FeatureType.TEXT])
    scores = tp._score_all(text_only)
    # user and visual cosines are 0 for a text-only query -> every
    # candidate's score is at most (1+eps) * eps^2
    assert scores.max() <= (1 + tp._epsilon) * tp._epsilon**2 + 1e-12


def test_search_interface(tp, tiny_corpus):
    hits = tp.search(tiny_corpus[2], k=4)
    assert len(hits) == 4
    assert tiny_corpus[2].object_id not in [h.object_id for h in hits]


def test_epsilon_validation(space):
    with pytest.raises(ValueError):
        TensorProductRetriever(space, epsilon=0.0)


def test_uses_unweighted_kernels(space, tiny_corpus):
    """The raw space must carry no IDF: a frequent and a rare tag get
    equal weight in the TP kernels (Basilico & Hofmann have no feature
    reweighting)."""
    tp = TensorProductRetriever(space)
    assert tp._raw._use_idf is False
