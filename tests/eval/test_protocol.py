"""Experiment protocol helpers."""

import pytest

from repro.core.mrf import MRFParameters
from repro.core.retrieval import RankedResult
from repro.eval.oracle import TopicOracle
from repro.eval.protocol import (
    PrecisionReport,
    evaluate_recommendation,
    evaluate_retrieval,
    make_retrieval_objective,
    sample_queries,
)


class StubSystem:
    """Returns a fixed ranking regardless of query."""

    def __init__(self, ranking):
        self._ranking = ranking

    def search(self, query, k=10):
        return [RankedResult(object_id=o, score=1.0 / (i + 1)) for i, o in enumerate(self._ranking[:k])]


class StubRecommender:
    def __init__(self, rankings):
        self._rankings = rankings

    def recommend(self, user, k=10):
        if user not in self._rankings:
            raise ValueError("no profile")
        return [RankedResult(object_id=o, score=1.0) for o in self._rankings[user][:k]]


def test_sample_queries_deterministic(tiny_corpus):
    a = sample_queries(tiny_corpus, n_queries=5, seed=9)
    b = sample_queries(tiny_corpus, n_queries=5, seed=9)
    assert [o.object_id for o in a] == [o.object_id for o in b]


def test_sample_queries_respects_min_features(tiny_corpus):
    queries = sample_queries(tiny_corpus, n_queries=10, seed=1, min_features=8)
    assert all(len(q.distinct_features()) >= 8 for q in queries)


def test_sample_queries_caps_at_population(tiny_corpus):
    queries = sample_queries(tiny_corpus, n_queries=10_000, seed=0)
    assert len(queries) <= len(tiny_corpus)


def test_sample_queries_impossible_filter(tiny_corpus):
    with pytest.raises(ValueError):
        sample_queries(tiny_corpus, min_features=10_000)


def test_evaluate_retrieval_exact(tiny_corpus):
    oracle = TopicOracle(tiny_corpus)
    query = tiny_corpus[0]
    relevant = [
        o.object_id
        for o in tiny_corpus
        if oracle.relevant(query.object_id, o.object_id) and o.object_id != query.object_id
    ]
    irrelevant = [
        o.object_id for o in tiny_corpus if not oracle.relevant(query.object_id, o.object_id)
    ]
    system = StubSystem(relevant[:2] + irrelevant[:2])
    report = evaluate_retrieval(system, [query], oracle, cutoffs=(2, 4))
    assert report[2] == 1.0
    assert report[4] == 0.5


def test_evaluate_retrieval_requires_queries(tiny_corpus):
    with pytest.raises(ValueError):
        evaluate_retrieval(StubSystem([]), [], TopicOracle(tiny_corpus))


def test_report_format_row():
    report = PrecisionReport(precision={5: 0.5, 10: 0.25})
    row = report.format_row("X")
    assert "P@5=0.500" in row and "P@10=0.250" in row


def test_evaluate_recommendation_skips_unservable(rec_corpus):
    from repro.eval.oracle import FavoriteOracle
    from repro.social.temporal import TemporalSplit

    split = TemporalSplit.paper_default(rec_corpus.n_months)
    oracle = FavoriteOracle(rec_corpus, split.evaluation)
    users = list(oracle.users())
    rankings = {users[0]: [e.object_id for e in rec_corpus.favorites_of(users[0], split.evaluation)][:10]}
    system = StubRecommender(rankings)
    report = evaluate_recommendation(system, users, oracle, cutoffs=(5,))
    # only the servable user is averaged; their list is all relevant
    assert report[5] == 1.0


def test_evaluate_recommendation_no_servable_user(rec_corpus):
    from repro.eval.oracle import FavoriteOracle
    from repro.social.temporal import MonthWindow

    oracle = FavoriteOracle(rec_corpus, MonthWindow(3, 6))
    with pytest.raises(ValueError):
        evaluate_recommendation(StubRecommender({}), ["x"], oracle)


def test_make_retrieval_objective(engine, tiny_corpus):
    oracle = TopicOracle(tiny_corpus)
    queries = sample_queries(tiny_corpus, n_queries=3, seed=2)
    objective = make_retrieval_objective(engine.with_params, queries, oracle, cutoff=5)
    value = objective(MRFParameters())
    assert 0.0 <= value <= 1.0
