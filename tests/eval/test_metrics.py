"""Rank metrics: exact values and properties."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.eval.metrics import (
    average_precision,
    mean_average_precision,
    ndcg_at_n,
    precision_at_n,
    recall_at_n,
    reciprocal_rank,
)

REL = {"r1", "r2", "r3"}


def is_rel(oid):
    return oid in REL


def test_precision_at_n_exact():
    ranked = ["r1", "x", "r2", "y", "z"]
    assert precision_at_n(ranked, is_rel, 1) == 1.0
    assert precision_at_n(ranked, is_rel, 2) == 0.5
    assert precision_at_n(ranked, is_rel, 5) == pytest.approx(0.4)


def test_precision_short_list_penalized():
    assert precision_at_n(["r1"], is_rel, 10) == pytest.approx(0.1)


def test_precision_invalid_n():
    with pytest.raises(ValueError):
        precision_at_n([], is_rel, 0)


def test_recall_at_n():
    ranked = ["r1", "x", "r2"]
    assert recall_at_n(ranked, is_rel, 3, n_relevant=3) == pytest.approx(2 / 3)
    assert recall_at_n(ranked, is_rel, 1, n_relevant=3) == pytest.approx(1 / 3)
    assert recall_at_n(ranked, is_rel, 3, n_relevant=0) == 0.0


def test_average_precision_exact():
    ranked = ["r1", "x", "r2"]
    # hits at ranks 1 and 3: (1/1 + 2/3) / 2 over retrieved relevant
    assert average_precision(ranked, is_rel) == pytest.approx((1 + 2 / 3) / 2)


def test_average_precision_with_total_relevant():
    ranked = ["r1", "x", "r2"]
    assert average_precision(ranked, is_rel, n_relevant=3) == pytest.approx((1 + 2 / 3) / 3)


def test_average_precision_no_hits():
    assert average_precision(["x", "y"], is_rel) == 0.0


def test_map_averages():
    rankings = [["r1"], ["x"]]
    fns = [is_rel, is_rel]
    assert mean_average_precision(rankings, fns) == pytest.approx(0.5)


def test_map_validates_alignment():
    with pytest.raises(ValueError):
        mean_average_precision([["a"]], [is_rel, is_rel])


def test_map_empty():
    assert mean_average_precision([], []) == 0.0


def test_ndcg_perfect_ranking_is_one():
    assert ndcg_at_n(["r1", "r2", "x"], is_rel, 3) == pytest.approx(1.0)


def test_ndcg_penalizes_late_hits():
    early = ndcg_at_n(["r1", "x", "y"], is_rel, 3)
    late = ndcg_at_n(["x", "y", "r1"], is_rel, 3)
    assert early > late > 0


def test_ndcg_no_hits():
    assert ndcg_at_n(["x"], is_rel, 5) == 0.0


def test_reciprocal_rank():
    assert reciprocal_rank(["x", "r1"], is_rel) == 0.5
    assert reciprocal_rank(["r2"], is_rel) == 1.0
    assert reciprocal_rank(["x"], is_rel) == 0.0


@given(st.lists(st.sampled_from(["r1", "r2", "x", "y", "z"]), unique=True, min_size=1),
       st.integers(1, 10))
def test_precision_bounds(ranked, n):
    value = precision_at_n(ranked, is_rel, n)
    assert 0.0 <= value <= 1.0


@given(st.lists(st.sampled_from(["r1", "r2", "r3", "x", "y"]), unique=True, min_size=1))
def test_ndcg_bounds(ranked):
    assert 0.0 <= ndcg_at_n(ranked, is_rel, len(ranked)) <= 1.0


@given(st.lists(st.sampled_from(["r1", "r2", "x", "y"]), unique=True, min_size=2))
def test_precision_monotone_prefix_consistency(ranked):
    """P@n * n (hit count) is non-decreasing in n."""
    hits = [precision_at_n(ranked, is_rel, n) * n for n in range(1, len(ranked) + 1)]
    assert all(b >= a - 1e-9 for a, b in zip(hits, hits[1:]))
