"""Relevance oracles."""

from repro.core.objects import MediaObject
from repro.eval.oracle import FavoriteOracle, TopicOracle
from repro.social.corpus import Corpus, FavoriteEvent
from repro.social.temporal import MonthWindow
from repro.social.users import SocialGraph


def make_corpus():
    objects = [
        MediaObject.build("o1", tags=["a"], timestamp=0),
        MediaObject.build("o2", tags=["b"], timestamp=1),
        MediaObject.build("o3", tags=["c"], timestamp=4),
        MediaObject.build("o4", tags=["d"], timestamp=5),
    ]
    return Corpus(
        objects=objects,
        social=SocialGraph({}),
        topics_of={"o1": (0,), "o2": (0, 1), "o3": (2,), "o4": (1,)},
        favorites=[
            FavoriteEvent("alice", "o1", 0),
            FavoriteEvent("alice", "o3", 4),
            FavoriteEvent("bob", "o4", 5),
        ],
        n_months=6,
    )


def test_topic_oracle_shared_topic():
    oracle = TopicOracle(make_corpus())
    assert oracle.relevant("o1", "o2")       # share topic 0
    assert oracle.relevant("o2", "o4")       # share topic 1
    assert not oracle.relevant("o1", "o3")


def test_topic_oracle_symmetry():
    oracle = TopicOracle(make_corpus())
    assert oracle.relevant("o1", "o2") == oracle.relevant("o2", "o1")


def test_topic_oracle_unknown_objects_never_relevant():
    oracle = TopicOracle(make_corpus())
    assert not oracle.relevant("ghost", "o1")
    assert not oracle.relevant("o1", "ghost")


def test_topic_oracle_relevance_fn():
    oracle = TopicOracle(make_corpus())
    fn = oracle.relevance_fn("o1")
    assert fn("o2") and not fn("o3")


def test_topic_oracle_n_relevant():
    oracle = TopicOracle(make_corpus())
    assert oracle.n_relevant("o1") == 1          # o2 only (self excluded)
    assert oracle.n_relevant("o1", exclude_self=False) == 2


def test_favorite_oracle_window_filter():
    corpus = make_corpus()
    oracle = FavoriteOracle(corpus, MonthWindow(3, 6))
    assert oracle.relevant("alice", "o3")
    assert not oracle.relevant("alice", "o1")  # outside window
    assert oracle.relevant("bob", "o4")


def test_favorite_oracle_unknown_user():
    oracle = FavoriteOracle(make_corpus(), MonthWindow(0, 6))
    assert not oracle.relevant("carol", "o1")
    assert oracle.n_relevant("carol") == 0


def test_favorite_oracle_users():
    oracle = FavoriteOracle(make_corpus(), MonthWindow(3, 6))
    assert oracle.users() == ("alice", "bob")


def test_favorite_oracle_n_relevant():
    oracle = FavoriteOracle(make_corpus(), MonthWindow(0, 6))
    assert oracle.n_relevant("alice") == 2


def test_favorite_oracle_relevance_fn():
    oracle = FavoriteOracle(make_corpus(), MonthWindow(3, 6))
    fn = oracle.relevance_fn("alice")
    assert fn("o3") and not fn("o4")
