"""Timing harness."""

import time

import pytest

from repro.core.retrieval import RankedResult
from repro.eval.timing import TimingReport, percentile, time_per_query


class SleepySystem:
    def __init__(self, seconds):
        self._seconds = seconds
        self.calls = 0

    def search(self, query, k=10):
        self.calls += 1
        time.sleep(self._seconds)
        return [RankedResult(object_id="x", score=1.0)]


def test_measures_positive_latency():
    report = time_per_query(SleepySystem(0.002), queries=["q1", "q2"], warmup=False)
    assert report.mean >= 0.002
    assert report.minimum <= report.mean <= report.maximum
    assert report.n_queries == 2


def test_warmup_adds_one_call():
    system = SleepySystem(0.0)
    time_per_query(system, queries=["q1", "q2"], warmup=True)
    assert system.calls == 3


def test_no_warmup():
    system = SleepySystem(0.0)
    time_per_query(system, queries=["q1"], warmup=False)
    assert system.calls == 1


def test_requires_queries():
    with pytest.raises(ValueError):
        time_per_query(SleepySystem(0.0), queries=[])


def test_format_row_mentions_stats():
    report = TimingReport(mean=0.001, minimum=0.0005, maximum=0.002, n_queries=3)
    row = report.format_row("FIG")
    assert "FIG" in row and "mean=" in row and "p50=" in row and "ms" in row


def test_report_carries_percentiles():
    report = time_per_query(SleepySystem(0.001), queries=["q1", "q2", "q3"], warmup=False)
    assert report.minimum <= report.p50 <= report.p95 <= report.maximum
    data = report.as_dict()
    assert data["n_queries"] == 3
    assert data["p50_ms"] == pytest.approx(report.p50 * 1000)
    assert data["p95_ms"] == pytest.approx(report.p95 * 1000)


def test_percentile_nearest_rank():
    samples = [float(i) for i in range(1, 11)]  # 1..10
    assert percentile(samples, 50.0) == 5.0
    assert percentile(samples, 95.0) == 10.0
    assert percentile(samples, 0.0) == 1.0
    assert percentile(samples, 100.0) == 10.0
    assert percentile([7.0], 50.0) == 7.0


def test_percentile_unsorted_input():
    assert percentile([3.0, 1.0, 2.0], 50.0) == 2.0


def test_percentile_invalid_inputs():
    with pytest.raises(ValueError):
        percentile([], 50.0)
    with pytest.raises(ValueError):
        percentile([1.0], 150.0)
