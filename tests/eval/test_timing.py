"""Timing harness."""

import time

import pytest

from repro.core.retrieval import RankedResult
from repro.eval.timing import TimingReport, time_per_query


class SleepySystem:
    def __init__(self, seconds):
        self._seconds = seconds
        self.calls = 0

    def search(self, query, k=10):
        self.calls += 1
        time.sleep(self._seconds)
        return [RankedResult(object_id="x", score=1.0)]


def test_measures_positive_latency():
    report = time_per_query(SleepySystem(0.002), queries=["q1", "q2"], warmup=False)
    assert report.mean >= 0.002
    assert report.minimum <= report.mean <= report.maximum
    assert report.n_queries == 2


def test_warmup_adds_one_call():
    system = SleepySystem(0.0)
    time_per_query(system, queries=["q1", "q2"], warmup=True)
    assert system.calls == 3


def test_no_warmup():
    system = SleepySystem(0.0)
    time_per_query(system, queries=["q1"], warmup=False)
    assert system.calls == 1


def test_requires_queries():
    with pytest.raises(ValueError):
        time_per_query(SleepySystem(0.0), queries=[])


def test_format_row_mentions_stats():
    report = TimingReport(mean=0.001, minimum=0.0005, maximum=0.002, n_queries=3)
    row = report.format_row("FIG")
    assert "FIG" in row and "mean=" in row and "ms" in row
