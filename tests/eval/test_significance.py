"""Paired significance tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.eval.significance import (
    ComparisonResult,
    paired_bootstrap_ci,
    paired_permutation_test,
)


def test_identical_samples_not_significant():
    a = [0.5, 0.6, 0.7, 0.4]
    result = paired_permutation_test(a, a)
    assert result.mean_difference == 0.0
    assert result.p_value > 0.9
    assert not result.significant


def test_clear_difference_is_significant():
    rng = np.random.default_rng(1)
    b = rng.uniform(0.3, 0.5, size=40)
    a = b + 0.2  # consistent +0.2 advantage
    result = paired_permutation_test(a, b)
    assert result.significant
    assert result.mean_difference == pytest.approx(0.2)


def test_two_sided():
    rng = np.random.default_rng(2)
    a = rng.uniform(0.3, 0.5, size=40)
    b = a + 0.2
    result = paired_permutation_test(a, b)
    assert result.significant
    assert result.mean_difference == pytest.approx(-0.2)


def test_p_value_never_zero():
    a = [1.0] * 10
    b = [0.0] * 10
    result = paired_permutation_test(a, b, n_permutations=100)
    assert 0 < result.p_value <= 1


def test_validates_input():
    with pytest.raises(ValueError):
        paired_permutation_test([1.0], [1.0, 2.0])
    with pytest.raises(ValueError):
        paired_permutation_test([], [])


def test_deterministic_given_seed():
    a = [0.5, 0.7, 0.6]
    b = [0.4, 0.8, 0.5]
    r1 = paired_permutation_test(a, b, seed=9)
    r2 = paired_permutation_test(a, b, seed=9)
    assert r1.p_value == r2.p_value


def test_format_row():
    result = ComparisonResult(0.5, 0.4, 0.1, 0.01, 20)
    row = result.format_row("FIG vs LSA")
    assert "FIG vs LSA" in row and "p=0.0100*" in row


def test_bootstrap_ci_contains_true_difference():
    rng = np.random.default_rng(3)
    b = rng.uniform(0.0, 1.0, size=200)
    a = b + 0.15 + rng.normal(0, 0.02, size=200)
    lo, hi = paired_bootstrap_ci(a, b)
    assert lo < 0.15 < hi
    assert hi - lo < 0.05  # tight with 200 pairs and small noise


def test_bootstrap_ci_validation():
    with pytest.raises(ValueError):
        paired_bootstrap_ci([1.0], [1.0], confidence=1.5)
    with pytest.raises(ValueError):
        paired_bootstrap_ci([], [])


@settings(deadline=None, max_examples=20)
@given(st.lists(st.floats(0, 1, allow_nan=False, width=32), min_size=2, max_size=30))
def test_p_value_in_unit_interval(values):
    shifted = [v * 0.9 for v in values]
    result = paired_permutation_test(values, shifted, n_permutations=200)
    assert 0 < result.p_value <= 1
