"""Bench harness reporting: stable per-bench artifact filenames.

The perf trajectory accumulates across PRs only if every bench writes
to the same ``benchmarks/results/<bench>.json`` path each run — these
tests pin the contract without running the (slow) benches themselves.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO_ROOT / "benchmarks"))

import _harness as H  # noqa: E402


def test_report_writes_text_and_json_artifacts(tmp_path, monkeypatch):
    monkeypatch.setattr(H, "RESULTS_DIR", tmp_path)
    H.report(
        "some_bench",
        "A title",
        ["row one", "row two"],
        capsys=None,
        data={"series": {"a": 1.0}},
    )
    text = (tmp_path / "some_bench.txt").read_text()
    assert "== A title ==" in text and "row one" in text
    payload = json.loads((tmp_path / "some_bench.json").read_text())
    assert payload["bench"] == "some_bench"
    assert payload["title"] == "A title"
    assert payload["series"] == {"a": 1.0}


def test_report_without_data_writes_no_json(tmp_path, monkeypatch):
    monkeypatch.setattr(H, "RESULTS_DIR", tmp_path)
    H.report("text_only", "T", ["r"], capsys=None)
    assert (tmp_path / "text_only.txt").exists()
    assert not (tmp_path / "text_only.json").exists()


def test_report_json_is_deterministic_and_sorted(tmp_path, monkeypatch):
    monkeypatch.setattr(H, "RESULTS_DIR", tmp_path)
    path = H.report_json("b", {"z": 1, "a": 2})
    assert path == tmp_path / "b.json"
    first = path.read_text()
    H.report_json("b", {"a": 2, "z": 1})
    assert path.read_text() == first


def test_every_bench_reports_a_json_artifact():
    """Static gate: each bench module either passes ``data=`` to
    ``H.report`` or calls ``report_json`` / writes the artifact itself,
    so no bench silently drops out of the perf trajectory."""
    for bench in sorted((REPO_ROOT / "benchmarks").glob("bench_*.py")):
        source = bench.read_text(encoding="utf-8")
        assert (
            "data=" in source
            or "report_json" in source
            or ".json" in source
        ), f"{bench.name} writes no JSON perf artifact"
