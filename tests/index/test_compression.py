"""Varint/delta posting compression."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.index.compression import (
    CompressedPosting,
    compression_ratio,
    decode_postings,
    decode_varint,
    encode_postings,
    encode_varint,
)


# ----------------------------------------------------------------------
# varints
# ----------------------------------------------------------------------
def test_varint_known_values():
    assert encode_varint(0) == b"\x00"
    assert encode_varint(127) == b"\x7f"
    assert encode_varint(128) == b"\x80\x01"
    assert encode_varint(300) == b"\xac\x02"


def test_varint_roundtrip_boundaries():
    for value in (0, 1, 127, 128, 16383, 16384, 2**31, 2**63):
        data = encode_varint(value)
        decoded, offset = decode_varint(data)
        assert decoded == value
        assert offset == len(data)


def test_varint_rejects_negative():
    with pytest.raises(ValueError):
        encode_varint(-1)


def test_varint_truncated():
    with pytest.raises(ValueError):
        decode_varint(b"\x80")  # continuation bit set, nothing follows


@given(st.integers(0, 2**40))
def test_varint_roundtrip_property(value):
    decoded, _ = decode_varint(encode_varint(value))
    assert decoded == value


# ----------------------------------------------------------------------
# posting lists
# ----------------------------------------------------------------------
def test_postings_roundtrip():
    ids = [0, 1, 5, 100, 10_000]
    assert decode_postings(encode_postings(ids)) == ids


def test_postings_reject_unsorted():
    with pytest.raises(ValueError):
        encode_postings([3, 2])
    with pytest.raises(ValueError):
        encode_postings([3, 3])


def test_postings_empty():
    assert decode_postings(encode_postings([])) == []


@given(st.sets(st.integers(0, 100_000), max_size=200))
def test_postings_roundtrip_property(id_set):
    ids = sorted(id_set)
    assert decode_postings(encode_postings(ids)) == ids


def test_dense_lists_compress_well():
    ids = list(range(1000))
    assert compression_ratio(ids) > 7.0  # 1 byte per gap vs 8 fixed


def test_compression_ratio_empty():
    assert compression_ratio([]) == 1.0


# ----------------------------------------------------------------------
# CompressedPosting
# ----------------------------------------------------------------------
def test_compressed_posting_append_iterate():
    p = CompressedPosting("T:a")
    for doc in (2, 7, 7, 30):
        p.add(doc)
    assert len(p) == 3
    assert p.doc_ids() == [2, 7, 30]
    assert p.key == "T:a"


def test_compressed_posting_rejects_regression():
    p = CompressedPosting("T:a")
    p.add(10)
    with pytest.raises(ValueError):
        p.add(5)


def test_compressed_posting_smaller_than_raw():
    p = CompressedPosting("T:a")
    for doc in range(0, 5000, 3):
        p.add(doc)
    assert p.nbytes() < len(p) * 8
