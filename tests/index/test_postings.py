"""Posting list semantics."""

from repro.index.postings import Posting


def test_add_and_iterate_in_order():
    p = Posting("T:a")
    p.add("o1")
    p.add("o2")
    assert list(p) == ["o1", "o2"]
    assert p.object_ids == ("o1", "o2")


def test_tail_dedup():
    p = Posting("T:a")
    p.add("o1")
    p.add("o1")  # repeated tail add must not duplicate
    assert len(p) == 1


def test_contains():
    p = Posting("T:a")
    p.add("o1")
    assert "o1" in p
    assert "o2" not in p


def test_cors_lazy_then_set():
    p = Posting("T:a")
    assert p.cors is None
    p.set_cors(0.75)
    assert p.cors == 0.75


def test_cors_eager():
    assert Posting("T:a", cors=0.5).cors == 0.5


def test_key():
    assert Posting("T:a|U:u").key == "T:a|U:u"
