"""Posting list semantics."""

import pytest

from repro.index.postings import MAX_IMPACT_VIEWS, Posting


def test_add_and_iterate_in_order():
    p = Posting("T:a")
    p.add("o1")
    p.add("o2")
    assert list(p) == ["o1", "o2"]
    assert p.object_ids == ("o1", "o2")


def test_tail_dedup():
    p = Posting("T:a")
    p.add("o1")
    p.add("o1")  # repeated tail add must not duplicate
    assert len(p) == 1


def test_contains():
    p = Posting("T:a")
    p.add("o1")
    assert "o1" in p
    assert "o2" not in p


def test_cors_lazy_then_set():
    p = Posting("T:a")
    assert p.cors is None
    p.set_cors(0.75)
    assert p.cors == 0.75


def test_cors_eager():
    assert Posting("T:a", cors=0.5).cors == 0.5


def test_key():
    assert Posting("T:a|U:u").key == "T:a|U:u"


# ----------------------------------------------------------------------
# impact-ordered views
# ----------------------------------------------------------------------
def _scored_posting():
    p = Posting("T:a", cors=0.5)
    p.add("o1", 0.2, 0.8)  # P(α=0.5) = 0.5
    p.add("o2", 0.9, 0.1)  # P(α=0.5) = 0.5 (tie with o1)
    p.add("o3", 0.0, 0.0)  # P = 0 at every α — dropped from views
    p.add("o4", 0.8, 0.8)  # P(α=0.5) = 0.8
    return p


def test_impact_view_sorted_descending_with_id_tiebreak():
    view = _scored_posting().impact_view(0.5)
    assert [oid for oid, _ in view.pairs] == ["o4", "o1", "o2"]
    scores = [s for _, s in view.pairs]
    assert scores == sorted(scores, reverse=True)
    # tie between o1 and o2 broken by ascending id (ranked_sort order)
    assert view.scores["o1"] == view.scores["o2"]


def test_impact_view_drops_nonpositive_entries():
    view = _scored_posting().impact_view(0.5)
    assert "o3" not in view.scores
    assert all(s > 0.0 for s in view.scores.values())


def test_impact_view_alpha_remixes_stored_components():
    p = _scored_posting()
    # α=1 ranks by freq part alone; α=0 by smoothing part alone.
    assert [oid for oid, _ in p.impact_view(1.0).pairs] == ["o2", "o4", "o1"]
    assert [oid for oid, _ in p.impact_view(0.0).pairs] == ["o1", "o4", "o2"]


def test_impact_view_exact_mix():
    p = _scored_posting()
    alpha = 0.3
    view = p.impact_view(alpha)
    assert view.scores["o1"] == alpha * 0.2 + (1.0 - alpha) * 0.8


def test_impact_view_cached_and_invalidated_by_add():
    p = _scored_posting()
    view = p.impact_view(0.5)
    assert p.impact_view(0.5) is view  # cached
    p.add("o5", 1.0, 1.0)
    fresh = p.impact_view(0.5)
    assert fresh is not view
    assert "o5" in fresh.scores


def test_impact_view_cache_bounded():
    p = _scored_posting()
    alphas = [i / (MAX_IMPACT_VIEWS + 4) for i in range(MAX_IMPACT_VIEWS + 4)]
    for alpha in alphas:
        p.impact_view(alpha)
    assert len(p._views) <= MAX_IMPACT_VIEWS


def test_components_and_rescore():
    p = _scored_posting()
    assert p.components(0) == (0.2, 0.8)
    p.rescore({"o1": (0.7, 0.3), "o4": (0.1, 0.1)})
    assert p.components(0) == (0.7, 0.3)
    # ids absent from the mapping reset to zero components
    assert p.components(1) == (0.0, 0.0)
    view = p.impact_view(0.5)
    assert "o2" not in view.scores and "o1" in view.scores


def test_extend_scored_bulk_append_dedups_tail():
    p = Posting("T:a")
    p.extend_scored([("o1", 0.1, 0.2), ("o1", 0.1, 0.2), ("o2", 0.3, 0.4)])
    assert p.object_ids == ("o1", "o2")
    assert p.components(1) == (0.3, 0.4)


def test_legacy_add_defaults_to_zero_components():
    p = Posting("T:a")
    p.add("o1")
    assert p.components(0) == (0.0, 0.0)
    assert p.impact_view(0.5).pairs == []


def test_repr_handles_unset_cors():
    assert "cors=None" in repr(Posting("T:a"))
    assert pytest.approx(0.5) == Posting("T:a", cors=0.5).cors
