"""v3 binary index format: layout, round trip, corruption detection.

Satellite coverage for the binary store: every corruption mode must
raise :class:`BinaryFormatError` naming the failing section (and byte
offset where known) — truncation, bit flips in each section, bad
magic/version/flags, CRC mismatches — and a write/read round trip must
be exact, including the iteration-order permutation and unicode keys.
"""

from __future__ import annotations

import math
import struct

import pytest

from repro.index.binfmt import (
    BINARY_FORMAT_VERSION,
    BLOCK_SIZE,
    MAGIC,
    SECTION_NAMES,
    BinaryFormatError,
    BinaryIndexReader,
    read_section_table,
    write_index_file,
)
from repro.index.postings import Posting


def _sample_postings() -> list[Posting]:
    """Three postings exercising the interesting cases: unicode key,
    unset CorS, empty posting, out-of-order entry adds."""
    a = Posting("tag:ünïcode|tag:zebra", cors=0.75)
    a.add("obj009", 0.5, 0.25)
    a.add("obj001", 0.125, 0.0625)  # out of id order: writer canonicalizes
    a.add("obj005", 1.0, 2.0)
    b = Posting("tag:alpha", cors=None)  # lazily-filled CorS round-trips as None
    b.add("obj001", 3.0, 4.0)
    empty = Posting("tag:empty", cors=0.0)
    return [a, b, empty]


def _blocky_postings() -> list[Posting]:
    """The samples plus one posting spanning multiple blocks — only
    multi-block postings store ``blockmax`` bounds, so this populates
    every section of the file, optional ones included."""
    postings = _sample_postings()
    big = Posting("tag:big", cors=0.5)
    for i in range(BLOCK_SIZE + 2):
        big.add(f"big{i:04d}", float(i + 1), 0.5)
    postings.append(big)
    return postings


@pytest.fixture()
def artifact(tmp_path):
    return write_index_file(
        tmp_path / "index.bin", _sample_postings(), n_objects=12, max_clique_size=2
    )


def _flip_byte(path, offset):
    data = bytearray(path.read_bytes())
    data[offset] ^= 0xFF
    path.write_bytes(bytes(data))


# ----------------------------------------------------------------------
# round trip
# ----------------------------------------------------------------------
def test_header_fields_round_trip(artifact):
    with BinaryIndexReader(artifact) as reader:
        assert reader.version == BINARY_FORMAT_VERSION
        assert reader.n_objects == 12
        assert reader.max_clique_size == 2
        assert reader.n_cliques == 3
        assert reader.total_entries == 4
        assert reader.object_count == 3  # distinct ids actually posted


def test_postings_round_trip_canonicalized(artifact):
    with BinaryIndexReader(artifact) as reader:
        slot = reader.find_slot("tag:ünïcode|tag:zebra")
        assert slot is not None
        ids, freq, smooth, cors = reader.read_posting(slot)
        # entries come back ascending by id, components permuted in parallel
        assert ids == ["obj001", "obj005", "obj009"]
        assert freq == [0.125, 1.0, 0.5]
        assert smooth == [0.0625, 2.0, 0.25]
        assert cors == 0.75


def test_none_cors_round_trips_via_nan(artifact):
    with BinaryIndexReader(artifact) as reader:
        slot = reader.find_slot("tag:alpha")
        assert reader.posting_cors(slot) is None
        *_, cors = reader.read_posting(slot)
        assert cors is None


def test_empty_posting_round_trips(artifact):
    with BinaryIndexReader(artifact) as reader:
        slot = reader.find_slot("tag:empty")
        assert reader.posting_length(slot) == 0
        ids, freq, smooth, cors = reader.read_posting(slot)
        assert ids == [] and freq == [] and smooth == []
        assert cors == 0.0


def test_iteration_order_preserved(artifact):
    """The ``order`` section recovers the original serialization order
    even though slots are key-sorted on disk."""
    with BinaryIndexReader(artifact) as reader:
        keys = [reader.key_at(slot) for slot in reader.iteration_order()]
    assert keys == [p.key for p in _sample_postings()]


def test_find_slot_miss(artifact):
    with BinaryIndexReader(artifact) as reader:
        assert reader.find_slot("tag:absent") is None
        assert reader.find_slot("") is None
        assert reader.find_slot("tag:zzzz") is None  # past the last key


def test_empty_index_round_trips(tmp_path):
    path = write_index_file(tmp_path / "empty.bin", [], n_objects=0, max_clique_size=3)
    with BinaryIndexReader(path) as reader:
        assert reader.n_cliques == 0
        assert reader.total_entries == 0
        assert reader.iteration_order() == []
        assert reader.find_slot("anything") is None


def test_writer_rejects_duplicate_keys(tmp_path):
    postings = [Posting("tag:a"), Posting("tag:a")]
    with pytest.raises(BinaryFormatError, match="duplicate"):
        write_index_file(tmp_path / "dup.bin", postings, n_objects=1, max_clique_size=2)


def test_writer_is_atomic(artifact):
    assert not artifact.with_name(artifact.name + ".tmp").exists()


# ----------------------------------------------------------------------
# corruption: header and section table
# ----------------------------------------------------------------------
def test_bad_magic(artifact):
    _flip_byte(artifact, 0)
    with pytest.raises(BinaryFormatError, match="magic") as exc_info:
        BinaryIndexReader(artifact)
    assert exc_info.value.section == "header"


def test_unsupported_version(artifact):
    data = bytearray(artifact.read_bytes())
    struct.pack_into("<I", data, 8, 99)
    # re-seal the header CRC so the version check (not the CRC) fires
    import zlib

    struct.pack_into("<I", data, 48, zlib.crc32(bytes(data[:48])))
    artifact.write_bytes(bytes(data))
    with pytest.raises(BinaryFormatError, match="version 99"):
        BinaryIndexReader(artifact)


def test_nonzero_flags(artifact):
    import zlib

    data = bytearray(artifact.read_bytes())
    struct.pack_into("<I", data, 12, 0x4)
    struct.pack_into("<I", data, 48, zlib.crc32(bytes(data[:48])))
    artifact.write_bytes(bytes(data))
    with pytest.raises(BinaryFormatError, match="flags"):
        BinaryIndexReader(artifact)


def test_header_crc_detects_flip(artifact):
    _flip_byte(artifact, 16)  # max_clique_size field
    with pytest.raises(BinaryFormatError, match="header CRC") as exc_info:
        BinaryIndexReader(artifact)
    assert exc_info.value.section == "header"


def test_section_table_crc_detects_flip(artifact):
    _flip_byte(artifact, 52 + 3)  # inside the first section record
    with pytest.raises(BinaryFormatError, match="section table CRC") as exc_info:
        BinaryIndexReader(artifact)
    assert exc_info.value.section == "section-table"


def test_truncated_to_nothing(artifact):
    artifact.write_bytes(artifact.read_bytes()[:20])
    with pytest.raises(BinaryFormatError, match="too small") as exc_info:
        BinaryIndexReader(artifact)
    assert exc_info.value.section == "header"


def test_truncated_inside_table(artifact):
    artifact.write_bytes(artifact.read_bytes()[:60])
    with pytest.raises(BinaryFormatError, match="truncated"):
        BinaryIndexReader(artifact)


def test_truncated_payload_names_section(artifact):
    """Cutting the file short makes some section extend past EOF; the
    error says which one and suggests truncation."""
    full = artifact.read_bytes()
    artifact.write_bytes(full[: len(full) - 16])
    with pytest.raises(BinaryFormatError, match="truncated artifact") as exc_info:
        BinaryIndexReader(artifact)
    assert exc_info.value.section in SECTION_NAMES


# ----------------------------------------------------------------------
# corruption: per-section bit flips
# ----------------------------------------------------------------------
@pytest.mark.parametrize("section", SECTION_NAMES)
def test_bit_flip_in_each_section_is_named(tmp_path, section):
    path = write_index_file(
        tmp_path / "index.bin", _blocky_postings(), n_objects=200, max_clique_size=2
    )
    offset, length = read_section_table(path)[section]
    assert length > 0, f"sample index leaves section {section!r} empty"
    _flip_byte(path, offset + length // 2)
    with pytest.raises(BinaryFormatError) as exc_info:
        BinaryIndexReader(path)
    # CRC localizes the flip to the exact section, and the offset in the
    # message points at it
    assert exc_info.value.section == section
    assert exc_info.value.offset == offset
    assert f"section={section!r}" in str(exc_info.value)
    assert f"offset={offset}" in str(exc_info.value)


def test_payload_flip_skips_lazy_check_but_verify_catches(tmp_path):
    """``verify_payload=False`` defers payload CRCs — the open succeeds,
    the explicit :meth:`verify` sweep still reports the bad section."""
    path = write_index_file(
        tmp_path / "index.bin", _sample_postings(), n_objects=12, max_clique_size=2
    )
    offset, length = read_section_table(path)["freq"]
    _flip_byte(path, offset + 1)
    with pytest.raises(BinaryFormatError):
        BinaryIndexReader(path)  # default verifies payloads eagerly
    with BinaryIndexReader(path, verify_payload=False) as reader:
        with pytest.raises(BinaryFormatError) as exc_info:
            reader.verify()
        assert exc_info.value.section == "freq"


def test_undecodable_posting_stream(tmp_path):
    """A postings-section flip that survives to decode time (payload
    verification off) is caught structurally: stream length mismatch,
    truncated varint, or an id outside the object table."""
    path = write_index_file(
        tmp_path / "index.bin", _sample_postings(), n_objects=12, max_clique_size=2
    )
    offset, _length = read_section_table(path)["postings"]
    data = bytearray(path.read_bytes())
    data[offset] = 0x80  # continuation bit with nothing sane after
    path.write_bytes(bytes(data))
    with BinaryIndexReader(path, verify_payload=False) as reader:
        with pytest.raises(BinaryFormatError) as exc_info:
            for slot in range(reader.n_cliques):
                reader.read_posting(slot)
        assert exc_info.value.section == "postings"


def test_nan_cors_is_not_corruption(artifact):
    """NaN is the in-band None encoding, not a corrupt float."""
    with BinaryIndexReader(artifact) as reader:
        for slot in range(reader.n_cliques):
            cors = reader.posting_cors(slot)
            assert cors is None or not math.isnan(cors)


def test_close_is_idempotent(artifact):
    reader = BinaryIndexReader(artifact)
    reader.close()
    reader.close()


def test_missing_file():
    with pytest.raises(BinaryFormatError, match="missing"):
        BinaryIndexReader("/nonexistent/index.bin")


def test_magic_is_stable():
    """The magic is the on-disk contract — changing it orphans every
    existing artifact."""
    assert MAGIC == b"RPROIDX3"
    assert BINARY_FORMAT_VERSION == 3
