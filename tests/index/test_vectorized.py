"""Block-max vectorized scoring: emission order, pruning, parity.

Unit coverage for :mod:`repro.index.vectorized` against synthetic
multi-block postings: the block-max source must emit exactly the scalar
``(-impact, id)`` order (ties included) while opening only the blocks
the walk reaches, the dense accumulator must match per-id random
access bit for bit, and the stored/rebuilt block maxima must agree.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.diagnostics.contracts import ContractViolation
from repro.index.binfmt import BLOCK_SIZE, BinaryIndexReader, write_index_file
from repro.index.postings import Posting
from repro.index.vectorized import (
    MAX_MIXED_CACHE,
    BlockMaxSource,
    PostingVectors,
    accumulate_scores,
    block_maxima,
)

N_ENTRIES = 3 * BLOCK_SIZE + 17  # four blocks, last one ragged


def _synthetic_vectors(seed: int = 0) -> PostingVectors:
    """A four-block posting with deliberate ties and zero impacts."""
    rng = np.random.default_rng(seed)
    ids = np.arange(N_ENTRIES, dtype=np.int64)
    freq = rng.uniform(0.0, 1.0, N_ENTRIES)
    freq[rng.integers(0, N_ENTRIES, 40)] = 0.5  # cross-block ties
    freq[rng.integers(0, N_ENTRIES, 25)] = 0.0  # dropped on emission
    smooth = rng.uniform(0.0, 0.5, N_ENTRIES)
    smooth[freq == 0.0] = 0.0
    return PostingVectors("tag:test", 0.8, ids, freq, smooth)


def _expected_entries(vectors, alpha, inner, outer, exclude=()):
    """The scalar reference: every positive entry, scaled with Python
    floats, in ``(-impact, id)`` order."""
    impacts = alpha * vectors.freq + (1.0 - alpha) * vectors.smooth
    entries = [
        (int(i), outer * (inner * float(p)))
        for i, p in zip(vectors.ids, impacts)
        if p > 0.0 and int(i) not in exclude
    ]
    entries.sort(key=lambda e: (-e[1], e[0]))
    return entries


# ----------------------------------------------------------------------
# block maxima
# ----------------------------------------------------------------------
def test_block_maxima_matches_manual():
    values = np.arange(N_ENTRIES, dtype=np.float64) % 97
    maxima = block_maxima(values)
    expected = [
        values[lo : lo + BLOCK_SIZE].max() for lo in range(0, N_ENTRIES, BLOCK_SIZE)
    ]
    assert maxima.tolist() == expected


def test_block_maxima_empty():
    assert len(block_maxima(np.empty(0))) == 0


# ----------------------------------------------------------------------
# emission order and parity with the scalar source
# ----------------------------------------------------------------------
@pytest.mark.parametrize("alpha", [0.0, 0.37, 0.5, 1.0])
def test_emission_matches_scalar_order_bitwise(alpha):
    vectors = _synthetic_vectors()
    source = BlockMaxSource(vectors, alpha, inner=0.3, outer=2.0)
    expected = _expected_entries(vectors, alpha, 0.3, 2.0)
    assert len(source) == len(expected)
    got = [source.entry(rank) for rank in range(len(expected))]
    assert got == expected  # ids AND float scores, ties by ascending id


def test_entry_past_end_raises():
    vectors = _synthetic_vectors()
    source = BlockMaxSource(vectors, 0.5, inner=1.0)
    with pytest.raises(IndexError):
        source.entry(len(source))
    # all blocks were forced open on the way to exhaustion
    assert source.blocks_opened == source.blocks_total
    assert source.blocks_skipped == 0


def test_shallow_walk_skips_blocks():
    """Concentrating mass in one block lets a short walk prune the
    rest — the WAND-style win the stats report."""
    ids = np.arange(N_ENTRIES, dtype=np.int64)
    freq = np.full(N_ENTRIES, 0.01)
    freq[:BLOCK_SIZE] = np.linspace(5.0, 4.0, BLOCK_SIZE)  # hot first block
    smooth = np.zeros(N_ENTRIES)
    vectors = PostingVectors("tag:hot", None, ids, freq, smooth)
    source = BlockMaxSource(vectors, 1.0, inner=1.0)
    for rank in range(8):
        source.entry(rank)
    assert source.blocks_opened == 1
    assert source.blocks_skipped == source.blocks_total - 1 > 0


# ----------------------------------------------------------------------
# exclusion
# ----------------------------------------------------------------------
def test_exclusion_drops_entries_everywhere():
    vectors = _synthetic_vectors()
    alpha, inner = 0.5, 0.7
    impacts = alpha * vectors.freq + (1.0 - alpha) * vectors.smooth
    positive = int(np.argmax(impacts > 0.0))
    zero = int(np.argmin(impacts > 0.0))
    missing = N_ENTRIES + 100
    exclude = {positive, zero, missing}
    source = BlockMaxSource(vectors, alpha, inner=inner, exclude=exclude)
    expected = _expected_entries(vectors, alpha, inner, 1.0, exclude=exclude)
    # only the positive excluded entry shrinks the source
    assert len(source) == source.n_pairs - 1
    assert [source.entry(r) for r in range(len(expected))] == expected
    for dense in exclude:
        assert source.score(dense) == 0.0


def test_score_random_access():
    vectors = _synthetic_vectors()
    alpha, inner, outer = 0.37, 0.3, 2.0
    source = BlockMaxSource(vectors, alpha, inner=inner, outer=outer)
    impacts = alpha * vectors.freq + (1.0 - alpha) * vectors.smooth
    for dense in (0, 1, N_ENTRIES - 1):
        impact = float(impacts[dense])
        expected = outer * (inner * impact) if impact > 0.0 else 0.0
        assert source.score(dense) == expected
    assert source.score(N_ENTRIES + 5) == 0.0  # absent id


# ----------------------------------------------------------------------
# accumulator
# ----------------------------------------------------------------------
def test_accumulate_matches_per_id_score_sum():
    sources = [
        BlockMaxSource(_synthetic_vectors(seed), 0.5, inner=0.2 * (seed + 1))
        for seed in range(3)
    ]
    acc = accumulate_scores(sources, N_ENTRIES).tolist()
    for dense in range(0, N_ENTRIES, 7):
        total = 0.0
        for source in sources:
            total += source.score(dense)
        assert acc[dense] == total  # bit-identical, source order preserved


# ----------------------------------------------------------------------
# caching
# ----------------------------------------------------------------------
def test_mixed_view_cached_per_alpha_with_fifo_eviction():
    vectors = _synthetic_vectors()
    first = vectors.mixed(0.5)
    assert vectors.mixed(0.5) is first
    for i in range(MAX_MIXED_CACHE):
        vectors.mixed(i / (MAX_MIXED_CACHE + 1))
    assert vectors.mixed(0.5) is not first  # evicted, rebuilt fresh


def test_block_runs_shared_across_sources():
    vectors = _synthetic_vectors()
    a = BlockMaxSource(vectors, 0.5, inner=1.0)
    b = BlockMaxSource(vectors, 0.5, inner=2.0)
    a.entry(0)
    b.entry(0)
    assert a._mv is b._mv and len(a._mv.block_runs) >= 1


# ----------------------------------------------------------------------
# contracts
# ----------------------------------------------------------------------
def test_corrupt_block_bound_detected_under_contracts(monkeypatch):
    monkeypatch.setenv("REPRO_CONTRACTS", "1")
    vectors = _synthetic_vectors()
    bad_bounds = np.zeros_like(vectors.block_max_freq)  # bounds below members
    broken = PostingVectors(
        "tag:bad", None, vectors.ids, vectors.freq, vectors.smooth,
        bad_bounds, np.zeros_like(vectors.block_max_smooth),
    )
    source = BlockMaxSource(broken, 1.0, inner=1.0)
    with pytest.raises(ContractViolation, match="block"):
        source.entry(0)


# ----------------------------------------------------------------------
# stored blockmax round trip
# ----------------------------------------------------------------------
def test_stored_block_max_matches_rebuilt(tmp_path):
    small = Posting("tag:small", cors=0.5)
    for i in range(5):
        small.add(f"s{i:03d}", float(i + 1), 0.25)
    big = Posting("tag:big", cors=0.5)
    for i in range(2 * BLOCK_SIZE + 9):
        big.add(f"b{i:04d}", float((i * 7) % 100 + 1), float(i % 13) / 13.0)
    path = write_index_file(
        tmp_path / "index.bin", [small, big], n_objects=600, max_clique_size=2
    )
    with BinaryIndexReader(path) as reader:
        # single-block postings store no bounds: consumers rebuild
        assert reader.posting_block_max(reader.find_slot("tag:small")) is None
        slot = reader.find_slot("tag:big")
        stored = reader.posting_block_max(slot)
        assert stored is not None
        freq, smooth = reader.posting_components(slot)
        np.testing.assert_array_equal(stored[0], block_maxima(freq))
        np.testing.assert_array_equal(stored[1], block_maxima(smooth))
