"""Property tests for the varint/d-gap posting codec.

The v3 binary index persists every posting through
``encode_postings``/``decode_postings``; these Hypothesis suites pin
the codec contract the format depends on: exact round trip for every
strictly increasing id sequence (including empty and single-element),
ids up to well past the 2^28 dense-id scale of paper-sized corpora,
and a hard error — never silent corruption — on non-increasing input.
"""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.index.compression import (
    decode_postings,
    decode_varint,
    encode_postings,
    encode_varint,
)

#: Dense ids at paper scale fit comfortably in 2^28; test past it.
MAX_ID = 2**28

increasing_ids = st.lists(
    st.integers(min_value=0, max_value=MAX_ID), unique=True, max_size=200
).map(sorted)


@given(increasing_ids)
def test_postings_round_trip(ids):
    assert decode_postings(encode_postings(ids)) == ids


@given(st.integers(min_value=0, max_value=MAX_ID))
def test_single_element_round_trip(doc_id):
    assert decode_postings(encode_postings([doc_id])) == [doc_id]


def test_empty_round_trip():
    assert encode_postings([]) == b""
    assert decode_postings(b"") == []


@given(increasing_ids)
def test_encoding_is_deterministic(ids):
    assert encode_postings(ids) == encode_postings(ids)


@given(st.lists(st.integers(min_value=0, max_value=MAX_ID), min_size=2, unique=True))
def test_non_increasing_raises(ids):
    """Any ordering other than strictly-increasing must be rejected —
    the binary writer relies on this as its canonicalization check."""
    descending = sorted(ids, reverse=True)
    with pytest.raises(ValueError):
        encode_postings(descending)


@given(st.lists(st.integers(min_value=0, max_value=MAX_ID), min_size=1))
def test_duplicate_ids_raise(ids):
    with pytest.raises(ValueError):
        encode_postings(sorted(ids) + [max(ids)])


@given(increasing_ids)
def test_gap_encoding_is_dense(ids):
    """Consecutive ids cost exactly one byte each — the size win the
    bench artifact's raw-vs-varint comparison measures."""
    consecutive = list(range(len(ids)))
    assert len(encode_postings(consecutive)) == len(consecutive)


@given(st.integers(min_value=0, max_value=2**63))
def test_varint_round_trip_wide(value):
    data = encode_varint(value)
    decoded, consumed = decode_varint(data)
    assert decoded == value
    assert consumed == len(data)


@given(st.binary(max_size=32), st.integers(min_value=0, max_value=2**40))
def test_varint_decode_ignores_trailing_bytes(suffix, value):
    data = encode_varint(value)
    decoded, consumed = decode_varint(data + suffix)
    assert decoded == value
    assert consumed == len(data)
