"""Fagin's Threshold Algorithm: exactness vs brute force + early stop."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.index.threshold import (
    AccessStats,
    ImpactSortedSource,
    SortedListSource,
    sorted_access_count,
    threshold_algorithm,
)


def _brute_force_topk(sources, k):
    ids = set()
    for s in sources:
        ids.update(oid for oid, _ in (s.entry(i) for i in range(len(s))))
    totals = {oid: sum(s.score(oid) for s in sources) for oid in ids}
    ranked = sorted(totals.items(), key=lambda kv: (-kv[1], kv[0]))
    return ranked[:k]


def test_single_source():
    src = SortedListSource([("a", 3.0), ("b", 1.0), ("c", 2.0)])
    assert threshold_algorithm([src], k=2) == [("a", 3.0), ("c", 2.0)]


def test_missing_scores_zero():
    s1 = SortedListSource([("a", 1.0), ("b", 0.5)])
    s2 = SortedListSource([("b", 1.0)])
    result = threshold_algorithm([s1, s2], k=2)
    assert result[0] == ("b", 1.5)
    assert result[1] == ("a", 1.0)


def test_k_larger_than_universe():
    src = SortedListSource([("a", 1.0)])
    assert threshold_algorithm([src], k=10) == [("a", 1.0)]


def test_empty_sources():
    assert threshold_algorithm([], k=3) == []
    assert threshold_algorithm([SortedListSource([])], k=3) == []


def test_invalid_k():
    with pytest.raises(ValueError):
        threshold_algorithm([SortedListSource([])], k=0)


def test_duplicate_ids_in_source_rejected():
    with pytest.raises(ValueError):
        SortedListSource([("a", 1.0), ("a", 2.0)])


def test_source_sorted_access():
    src = SortedListSource([("a", 1.0), ("b", 3.0), ("c", 2.0)])
    assert src.entry(0) == ("b", 3.0)
    assert src.entry(1) == ("c", 2.0)
    assert src.score("a") == 1.0
    assert src.score("zzz") == 0.0


def test_early_termination_depth():
    """One dominant object lets TA stop far before exhausting lists."""
    n = 100
    s1 = SortedListSource([("top", 100.0)] + [(f"x{i}", 1.0 - i * 1e-4) for i in range(n)])
    s2 = SortedListSource([("top", 100.0)] + [(f"x{i}", 1.0 - i * 1e-4) for i in range(n)])
    depth = sorted_access_count([s1, s2], k=1)
    assert depth <= 3


def test_results_sorted_and_unique():
    sources = [
        SortedListSource([(f"o{i}", float(i % 7)) for i in range(20)]),
        SortedListSource([(f"o{i}", float((i * 3) % 5)) for i in range(0, 20, 2)]),
    ]
    result = threshold_algorithm(sources, k=10)
    ids = [oid for oid, _ in result]
    scores = [s for _, s in result]
    assert len(ids) == len(set(ids))
    assert scores == sorted(scores, reverse=True)


# ----------------------------------------------------------------------
# lazy impact-ordered sources
# ----------------------------------------------------------------------
def _impact_source(pairs, inner=1.0, outer=1.0, exclude=frozenset()):
    return ImpactSortedSource(pairs, dict(pairs), inner=inner, outer=outer, exclude=exclude)


def test_impact_source_scales_sorted_and_random_access():
    src = _impact_source([("a", 0.5), ("b", 0.25)], inner=2.0, outer=3.0)
    assert src.entry(0) == ("a", 3.0 * (2.0 * 0.5))
    assert src.score("b") == 3.0 * (2.0 * 0.25)
    assert src.score("zzz") == 0.0


def test_impact_source_excludes_query_id():
    src = _impact_source([("q", 0.9), ("a", 0.5)], exclude={"q"})
    assert len(src) == 1
    assert src.entry(0) == ("a", 0.5)
    assert src.score("q") == 0.0


def test_impact_source_exclude_absent_id_keeps_length():
    src = _impact_source([("a", 0.5)], exclude={"nope"})
    assert len(src) == 1


def test_impact_source_cursor_is_lazy():
    src = _impact_source([(f"o{i}", 1.0 - i * 0.01) for i in range(100)])
    src.entry(2)
    assert src._cursor == 3  # never touched the tail
    src.entry(1)
    assert src._cursor == 3  # re-reads come from the materialized prefix


def test_impact_source_interchangeable_with_eager_source():
    pairs = [("a", 3.0), ("c", 2.0), ("b", 1.0)]
    eager = SortedListSource(list(pairs))
    lazy = _impact_source(pairs)
    assert threshold_algorithm([eager], k=3) == threshold_algorithm([lazy], k=3)


def test_impact_source_early_termination_skips_tail():
    n = 200
    pairs = [("top", 100.0)] + [(f"x{i:03d}", 1.0 - i * 1e-4) for i in range(n)]
    s1, s2 = _impact_source(pairs), _impact_source(pairs)
    stats = AccessStats()
    threshold_algorithm([s1, s2], k=1, stats=stats)
    assert stats.rounds <= 3
    assert s1._cursor <= 3  # the posting tail was never materialized
    assert stats.sorted_accesses < 2 * len(pairs)


# ----------------------------------------------------------------------
# access accounting
# ----------------------------------------------------------------------
def test_access_stats_counts_full_walk():
    src = SortedListSource([("a", 3.0), ("b", 2.0), ("c", 1.0)])
    stats = AccessStats()
    threshold_algorithm([src], k=3, stats=stats)
    assert stats.sorted_accesses == 3
    assert stats.random_accesses == 3  # one probe per newly-seen object
    assert stats.rounds == 3


def test_access_stats_merge_accumulates():
    a = AccessStats(sorted_accesses=2, random_accesses=4, rounds=1)
    a.merge(AccessStats(sorted_accesses=3, random_accesses=1, rounds=2))
    assert (a.sorted_accesses, a.random_accesses, a.rounds) == (5, 5, 3)


def test_sorted_access_count_matches_stats_rounds():
    sources = [
        SortedListSource([(f"o{i}", float(20 - i)) for i in range(20)]),
        SortedListSource([(f"o{i}", float(i % 5)) for i in range(20)]),
    ]
    stats = AccessStats()
    threshold_algorithm(sources, k=3, stats=stats)
    assert sorted_access_count(sources, k=3) == stats.rounds


@settings(deadline=None, max_examples=60)
@given(st.data())
def test_matches_brute_force(data):
    """TA returns exactly the brute-force top-k (scores always; ids up
    to ties at the k-th score)."""
    n_sources = data.draw(st.integers(1, 4))
    universe = [f"o{i}" for i in range(data.draw(st.integers(1, 15)))]
    sources = []
    for _ in range(n_sources):
        members = data.draw(st.lists(st.sampled_from(universe), unique=True, min_size=0))
        entries = [
            (m, data.draw(st.floats(0.0, 10.0, allow_nan=False, width=32))) for m in members
        ]
        sources.append(SortedListSource(entries))
    k = data.draw(st.integers(1, 10))
    got = threshold_algorithm(sources, k=k)
    expected = _brute_force_topk(sources, k)
    assert [s for _, s in got] == pytest.approx([s for _, s in expected])
    # ids must agree wherever scores are strictly distinct
    exp_scores = [s for _, s in expected]
    for i, (oid, score) in enumerate(got):
        if exp_scores.count(score) == 1:
            assert oid == expected[i][0]
