"""Fagin's Threshold Algorithm: exactness vs brute force + early stop."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.index.threshold import SortedListSource, sorted_access_count, threshold_algorithm


def _brute_force_topk(sources, k):
    ids = set()
    for s in sources:
        ids.update(oid for oid, _ in (s.entry(i) for i in range(len(s))))
    totals = {oid: sum(s.score(oid) for s in sources) for oid in ids}
    ranked = sorted(totals.items(), key=lambda kv: (-kv[1], kv[0]))
    return ranked[:k]


def test_single_source():
    src = SortedListSource([("a", 3.0), ("b", 1.0), ("c", 2.0)])
    assert threshold_algorithm([src], k=2) == [("a", 3.0), ("c", 2.0)]


def test_missing_scores_zero():
    s1 = SortedListSource([("a", 1.0), ("b", 0.5)])
    s2 = SortedListSource([("b", 1.0)])
    result = threshold_algorithm([s1, s2], k=2)
    assert result[0] == ("b", 1.5)
    assert result[1] == ("a", 1.0)


def test_k_larger_than_universe():
    src = SortedListSource([("a", 1.0)])
    assert threshold_algorithm([src], k=10) == [("a", 1.0)]


def test_empty_sources():
    assert threshold_algorithm([], k=3) == []
    assert threshold_algorithm([SortedListSource([])], k=3) == []


def test_invalid_k():
    with pytest.raises(ValueError):
        threshold_algorithm([SortedListSource([])], k=0)


def test_duplicate_ids_in_source_rejected():
    with pytest.raises(ValueError):
        SortedListSource([("a", 1.0), ("a", 2.0)])


def test_source_sorted_access():
    src = SortedListSource([("a", 1.0), ("b", 3.0), ("c", 2.0)])
    assert src.entry(0) == ("b", 3.0)
    assert src.entry(1) == ("c", 2.0)
    assert src.score("a") == 1.0
    assert src.score("zzz") == 0.0


def test_early_termination_depth():
    """One dominant object lets TA stop far before exhausting lists."""
    n = 100
    s1 = SortedListSource([("top", 100.0)] + [(f"x{i}", 1.0 - i * 1e-4) for i in range(n)])
    s2 = SortedListSource([("top", 100.0)] + [(f"x{i}", 1.0 - i * 1e-4) for i in range(n)])
    depth = sorted_access_count([s1, s2], k=1)
    assert depth <= 3


def test_results_sorted_and_unique():
    sources = [
        SortedListSource([(f"o{i}", float(i % 7)) for i in range(20)]),
        SortedListSource([(f"o{i}", float((i * 3) % 5)) for i in range(0, 20, 2)]),
    ]
    result = threshold_algorithm(sources, k=10)
    ids = [oid for oid, _ in result]
    scores = [s for _, s in result]
    assert len(ids) == len(set(ids))
    assert scores == sorted(scores, reverse=True)


@settings(deadline=None, max_examples=60)
@given(st.data())
def test_matches_brute_force(data):
    """TA returns exactly the brute-force top-k (scores always; ids up
    to ties at the k-th score)."""
    n_sources = data.draw(st.integers(1, 4))
    universe = [f"o{i}" for i in range(data.draw(st.integers(1, 15)))]
    sources = []
    for _ in range(n_sources):
        members = data.draw(st.lists(st.sampled_from(universe), unique=True, min_size=0))
        entries = [
            (m, data.draw(st.floats(0.0, 10.0, allow_nan=False, width=32))) for m in members
        ]
        sources.append(SortedListSource(entries))
    k = data.draw(st.integers(1, 10))
    got = threshold_algorithm(sources, k=k)
    expected = _brute_force_topk(sources, k)
    assert [s for _, s in got] == pytest.approx([s for _, s in expected])
    # ids must agree wherever scores are strictly distinct
    exp_scores = [s for _, s in expected]
    for i, (oid, score) in enumerate(got):
        if exp_scores.count(score) == 1:
            assert oid == expected[i][0]
