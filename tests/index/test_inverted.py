"""Clique inverted index: correctness of postings against FIGs."""

import pytest

from repro.core.cliques import Clique
from repro.core.fig import FeatureInteractionGraph
from repro.core.objects import Feature
from repro.index.inverted import CliqueInvertedIndex

T = Feature.text


@pytest.fixture(scope="module")
def built(tiny_corpus, correlations):
    index = CliqueInvertedIndex(correlations, max_clique_size=3)
    index.build(tiny_corpus)
    return index


def test_counts(built, tiny_corpus):
    assert built.n_objects == len(tiny_corpus)
    assert len(built) > 0


def test_every_object_clique_indexed(built, tiny_corpus, correlations):
    """Cross-check a few objects: each of their cliques' postings must
    contain the object."""
    for obj in list(tiny_corpus)[:5]:
        fig = FeatureInteractionGraph.from_object(obj, correlations)
        for clique in fig.cliques(max_size=3):
            posting = built.lookup(clique)
            assert posting is not None
            assert obj.object_id in posting


def test_lookup_unknown_clique(built):
    assert built.lookup(Clique((T("never-seen"),))) is None
    assert Clique((T("never-seen"),)) not in built


def test_lookup_fills_cors_lazily(built, tiny_corpus, correlations):
    fig = FeatureInteractionGraph.from_object(tiny_corpus[0], correlations)
    clique = fig.cliques(max_size=1)[0]
    posting = built.lookup(clique)
    assert posting.cors is not None
    assert posting.cors == pytest.approx(correlations.cors(clique.features))


def test_lookup_by_key_string(built, tiny_corpus, correlations):
    fig = FeatureInteractionGraph.from_object(tiny_corpus[0], correlations)
    clique = fig.cliques(max_size=1)[0]
    assert built.lookup(clique.key) is built.lookup(clique)


def test_candidates_union(built, tiny_corpus, correlations):
    fig = FeatureInteractionGraph.from_object(tiny_corpus[0], correlations)
    cliques = fig.cliques(max_size=2)
    candidates = built.candidates(cliques)
    assert tiny_corpus[0].object_id in candidates
    # union over per-clique postings
    manual = set()
    for c in cliques:
        posting = built.lookup(c)
        if posting:
            manual.update(posting.object_ids)
    assert candidates == manual


def test_postings_have_no_duplicates(built):
    for posting in built.iter_postings():
        ids = posting.object_ids
        assert len(ids) == len(set(ids))


def test_stats_consistent(built):
    stats = built.stats()
    assert stats["n_objects"] == built.n_objects
    assert stats["n_cliques"] == len(built)
    assert stats["total_postings"] >= stats["n_cliques"]
    assert stats["max_posting_length"] >= stats["avg_posting_length"]


def test_incremental_add(tiny_corpus, correlations):
    index = CliqueInvertedIndex(correlations, max_clique_size=2)
    n1 = index.add_object(tiny_corpus[0])
    assert n1 > 0
    assert index.n_objects == 1
    index.add_object(tiny_corpus[1])
    assert index.n_objects == 2


def test_max_clique_size_respected(tiny_corpus, correlations):
    index = CliqueInvertedIndex(correlations, max_clique_size=1)
    index.build(list(tiny_corpus)[:10])
    for posting in index.iter_postings():
        assert "|" not in posting.key  # singletons only


# ----------------------------------------------------------------------
# build-time scoring and the shard-parallel build
# ----------------------------------------------------------------------
def _assert_identical(a: CliqueInvertedIndex, b: CliqueInvertedIndex) -> None:
    assert len(a) == len(b)
    assert a.n_objects == b.n_objects
    for posting in a.iter_postings():
        other = b.lookup(posting.key)
        assert other is not None
        assert other.object_ids == posting.object_ids
        assert other.cors == posting.cors
        for i in range(len(posting)):
            assert other.components(i) == posting.components(i)


def test_build_scores_postings_eagerly(built):
    for posting in built.iter_postings():
        assert posting.cors is not None
        # at least one entry of every posting carries a positive
        # frequency part — the objects *contain* the clique
        parts = [posting.components(i) for i in range(len(posting))]
        assert any(f > 0.0 for f, _ in parts)


def test_parallel_build_bit_identical_to_serial(tiny_corpus, correlations):
    serial = CliqueInvertedIndex(correlations, max_clique_size=2).build(tiny_corpus)
    sharded = CliqueInvertedIndex(correlations, max_clique_size=2).build(
        tiny_corpus, n_workers=2
    )
    _assert_identical(serial, sharded)


def test_parallel_build_small_corpus_runs_inline(tiny_corpus, correlations):
    # fewer objects than 2*workers: the pool must be skipped
    few = list(tiny_corpus)[:3]
    index = CliqueInvertedIndex(correlations, max_clique_size=2).build(few, n_workers=64)
    assert index.n_objects == 3


def test_build_invalid_workers(tiny_corpus, correlations):
    with pytest.raises(ValueError):
        CliqueInvertedIndex(correlations, max_clique_size=2).build(tiny_corpus, n_workers=0)


def test_adopt_posting_rejects_duplicate_key(correlations):
    from repro.index.postings import Posting

    index = CliqueInvertedIndex(correlations, max_clique_size=2)
    index.adopt_posting(Posting("T:a", cors=0.5))
    with pytest.raises(ValueError):
        index.adopt_posting(Posting("T:a", cors=0.5))


def test_set_n_objects_rejects_negative(correlations):
    index = CliqueInvertedIndex(correlations, max_clique_size=2)
    with pytest.raises(ValueError):
        index.set_n_objects(-1)


def test_rescore_restores_build_time_components(tiny_corpus, correlations):
    reference = CliqueInvertedIndex(correlations, max_clique_size=2).build(tiny_corpus)
    # strip the components (a legacy v1 artifact carries ids only)
    from repro.index.postings import Posting

    legacy = CliqueInvertedIndex(correlations, max_clique_size=2)
    for posting in reference.iter_postings():
        bare = Posting(posting.key)
        for object_id in posting:
            bare.add(object_id)
        legacy.adopt_posting(bare)
    legacy.set_n_objects(reference.n_objects)
    legacy.rescore(tiny_corpus)
    _assert_identical(reference, legacy)


def test_precompute_impact_populates_views(built):
    built.precompute_impact(0.37)
    for posting in built.iter_postings():
        assert 0.37 in posting._views
