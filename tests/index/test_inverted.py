"""Clique inverted index: correctness of postings against FIGs."""

import pytest

from repro.core.cliques import Clique
from repro.core.fig import FeatureInteractionGraph
from repro.core.objects import Feature
from repro.index.inverted import CliqueInvertedIndex

T = Feature.text


@pytest.fixture(scope="module")
def built(tiny_corpus, correlations):
    index = CliqueInvertedIndex(correlations, max_clique_size=3)
    index.build(tiny_corpus)
    return index


def test_counts(built, tiny_corpus):
    assert built.n_objects == len(tiny_corpus)
    assert len(built) > 0


def test_every_object_clique_indexed(built, tiny_corpus, correlations):
    """Cross-check a few objects: each of their cliques' postings must
    contain the object."""
    for obj in list(tiny_corpus)[:5]:
        fig = FeatureInteractionGraph.from_object(obj, correlations)
        for clique in fig.cliques(max_size=3):
            posting = built.lookup(clique)
            assert posting is not None
            assert obj.object_id in posting


def test_lookup_unknown_clique(built):
    assert built.lookup(Clique((T("never-seen"),))) is None
    assert Clique((T("never-seen"),)) not in built


def test_lookup_fills_cors_lazily(built, tiny_corpus, correlations):
    fig = FeatureInteractionGraph.from_object(tiny_corpus[0], correlations)
    clique = fig.cliques(max_size=1)[0]
    posting = built.lookup(clique)
    assert posting.cors is not None
    assert posting.cors == pytest.approx(correlations.cors(clique.features))


def test_lookup_by_key_string(built, tiny_corpus, correlations):
    fig = FeatureInteractionGraph.from_object(tiny_corpus[0], correlations)
    clique = fig.cliques(max_size=1)[0]
    assert built.lookup(clique.key) is built.lookup(clique)


def test_candidates_union(built, tiny_corpus, correlations):
    fig = FeatureInteractionGraph.from_object(tiny_corpus[0], correlations)
    cliques = fig.cliques(max_size=2)
    candidates = built.candidates(cliques)
    assert tiny_corpus[0].object_id in candidates
    # union over per-clique postings
    manual = set()
    for c in cliques:
        posting = built.lookup(c)
        if posting:
            manual.update(posting.object_ids)
    assert candidates == manual


def test_postings_have_no_duplicates(built):
    for posting in built.iter_postings():
        ids = posting.object_ids
        assert len(ids) == len(set(ids))


def test_stats_consistent(built):
    stats = built.stats()
    assert stats["n_objects"] == built.n_objects
    assert stats["n_cliques"] == len(built)
    assert stats["total_postings"] >= stats["n_cliques"]
    assert stats["max_posting_length"] >= stats["avg_posting_length"]


def test_incremental_add(tiny_corpus, correlations):
    index = CliqueInvertedIndex(correlations, max_clique_size=2)
    n1 = index.add_object(tiny_corpus[0])
    assert n1 > 0
    assert index.n_objects == 1
    index.add_object(tiny_corpus[1])
    assert index.n_objects == 2


def test_max_clique_size_respected(tiny_corpus, correlations):
    index = CliqueInvertedIndex(correlations, max_clique_size=1)
    index.build(list(tiny_corpus)[:10])
    for posting in index.iter_postings():
        assert "|" not in posting.key  # singletons only
